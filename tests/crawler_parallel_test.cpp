// Parallel crawl engine determinism: the headline invariant is that a
// crawl with N worker threads produces a byte-identical serialized Dataset
// to the sequential crawl. Two layers:
//   * a hand-built multi-torrent mini ecosystem (fast, exercises staggered
//     publication times and per-torrent RNG substreams), and
//   * a generated quick-scenario ecosystem crawled through the same
//     Crawler the production path uses.
#include <gtest/gtest.h>

#include <sstream>

#include "core/ecosystem.hpp"
#include "crawler/crawler.hpp"
#include "crawler/dataset_io.hpp"
#include "torrent/metainfo.hpp"

namespace btpub {
namespace {

std::string serialize(const Dataset& dataset) {
  std::ostringstream out(std::ios::binary);
  save_dataset(dataset, out);
  return out.str();
}

class CrawlerParallelTest : public ::testing::Test {
 protected:
  CrawlerParallelTest() : portal_("mini"), tracker_(TrackerConfig{}, Rng(3)) {
    const IspId isp = geo_.add_isp("MiniNet", IspType::HostingProvider, "FR");
    geo_.add_block(CidrBlock(IpAddress(11, 0, 0, 0), 8), isp, "Paris");
    // A dozen torrents with staggered births, varying swarm sizes and one
    // moderated listing — enough structure that any ordering dependence
    // in the engine would show up in the serialized bytes.
    for (std::uint32_t i = 0; i < 12; ++i) {
      const TorrentId id =
          add_torrent("t" + std::to_string(i), /*publisher_nat=*/i % 5 == 3,
                      /*extra_leechers=*/3 + i, /*extra_seeders=*/i % 4 == 2,
                      /*publish_at=*/minutes(10) + hours(2) * i,
                      /*publisher_stay=*/hours(3 + i % 3));
      if (i == 7) portal_.moderate_remove(id, hours(30));
    }
  }

  TorrentId add_torrent(const std::string& title, bool publisher_nat,
                        std::size_t extra_leechers, std::size_t extra_seeders,
                        SimTime publish_at, SimDuration publisher_stay) {
    Metainfo metainfo = Metainfo::make(tracker_.announce_url(), title,
                                       {{title + ".avi", 5 << 20}}, 256 * 1024,
                                       title);
    PublishRequest request;
    request.title = title;
    request.category = ContentCategory::Movies;
    request.username = "user_" + title;
    request.torrent_bytes = metainfo.encode();
    request.infohash = metainfo.infohash();
    request.size_bytes = metainfo.total_size();
    const TorrentId id = portal_.publish(std::move(request), publish_at);

    auto swarm = std::make_unique<Swarm>(metainfo.infohash(),
                                         metainfo.piece_count(), publish_at);
    PeerSession publisher;
    publisher.endpoint = Endpoint{IpAddress(0x0B000001 + id * 256), 6881};
    publisher.arrive = publish_at;
    publisher.depart = publish_at + publisher_stay;
    publisher.complete_at = publish_at;
    publisher.nat = publisher_nat;
    publisher.is_publisher = true;
    swarm->add_session(publisher);
    for (std::size_t i = 0; i < extra_leechers; ++i) {
      PeerSession s;
      s.endpoint = Endpoint{IpAddress(0x0B010000 + id * 4096 +
                                      static_cast<std::uint32_t>(i)),
                            20000};
      s.arrive = publish_at + minutes(20) * static_cast<SimDuration>(i);
      s.depart = s.arrive + hours(6);
      swarm->add_session(s);
    }
    for (std::size_t i = 0; i < extra_seeders; ++i) {
      PeerSession s;
      s.endpoint = Endpoint{IpAddress(0x0B020000 + id * 4096 +
                                      static_cast<std::uint32_t>(i)),
                            20000};
      s.arrive = publish_at;
      s.depart = publish_at + hours(6);
      s.complete_at = publish_at;
      swarm->add_session(s);
    }
    swarm->finalize();
    tracker_.host_swarm(*swarm);
    network_.register_swarm(*swarm);
    swarms_.push_back(std::move(swarm));
    return id;
  }

  Dataset crawl_with_threads(std::size_t threads) {
    tracker_.reset_state(77);
    CrawlerConfig config;
    config.threads = threads;
    Crawler crawler(portal_, tracker_, network_, geo_, config, 9);
    return crawler.crawl_window(0, days(2));
  }

  GeoDb geo_;
  Portal portal_;
  Tracker tracker_;
  SwarmNetwork network_;
  std::vector<std::unique_ptr<Swarm>> swarms_;
};

TEST_F(CrawlerParallelTest, FourThreadsByteIdenticalToOneThread) {
  const Dataset sequential = crawl_with_threads(1);
  const Dataset parallel = crawl_with_threads(4);
  ASSERT_GT(sequential.torrent_count(), 0u);
  EXPECT_EQ(sequential.torrent_count(), parallel.torrent_count());
  EXPECT_EQ(serialize(sequential), serialize(parallel));
}

TEST_F(CrawlerParallelTest, ManyThreadsAndRepeatedRunsAllIdentical) {
  const std::string reference = serialize(crawl_with_threads(1));
  for (const std::size_t threads : {2u, 3u, 8u, 16u}) {
    EXPECT_EQ(serialize(crawl_with_threads(threads)), reference)
        << "thread count " << threads << " diverged";
  }
  // Replay at the same thread count is stable too.
  EXPECT_EQ(serialize(crawl_with_threads(4)), serialize(crawl_with_threads(4)));
}

TEST_F(CrawlerParallelTest, MergeOrderIsPortalIdOrder) {
  const Dataset parallel = crawl_with_threads(8);
  for (std::size_t i = 1; i < parallel.torrent_count(); ++i) {
    EXPECT_LT(parallel.torrents[i - 1].portal_id, parallel.torrents[i].portal_id);
  }
}

TEST(CrawlerParallelEcosystemTest, GeneratedScenarioByteIdentical) {
  // The production path: a generated ecosystem, crawled twice through
  // Crawler with different thread counts over the same tracker.
  ScenarioConfig config = ScenarioConfig::quick(1234);
  config.window = days(2);
  config.population.regular_publishers = 120;
  config.population.fake_usernames = 10;
  Ecosystem ecosystem(config);
  ecosystem.build();

  auto crawl = [&](std::size_t threads) {
    ecosystem.tracker().reset_state(config.seed ^ 0x7214CBull);
    CrawlerConfig crawler_config = config.crawler;
    crawler_config.threads = threads;
    Crawler crawler(ecosystem.portal(), ecosystem.tracker(),
                    ecosystem.network(), ecosystem.geo(), crawler_config,
                    config.seed ^ 0xC4A37E5ull);
    return crawler.crawl_window(0, config.window);
  };

  const Dataset sequential = crawl(1);
  const Dataset parallel = crawl(4);
  ASSERT_GT(sequential.torrent_count(), 0u);
  EXPECT_EQ(serialize(sequential), serialize(parallel));
}

}  // namespace
}  // namespace btpub
