// Website directory, page views, HTTP third-party detection, appraisal.
#include <gtest/gtest.h>

#include "websim/appraisal.hpp"
#include "websim/website.hpp"

namespace btpub {
namespace {

Website portal_site() {
  Website site;
  site.domain = "ultratorrents.com";
  site.type = BusinessType::PrivateBtPortal;
  site.value_usd = 33000;
  site.daily_income_usd = 55;
  site.daily_visits = 21000;
  site.has_ads = true;
  site.seeks_donations = true;
  site.offers_vip = true;
  site.requires_registration = true;
  site.has_private_tracker = true;
  site.ad_networks = {"adserve-one.example", "clickbarn.example"};
  return site;
}

Website image_site() {
  Website site;
  site.domain = "pixsor.com";
  site.type = BusinessType::ImageHosting;
  site.value_usd = 22000;
  site.daily_income_usd = 51;
  site.daily_visits = 22000;
  site.has_ads = true;
  site.ad_networks = {"trafficx.example"};
  return site;
}

TEST(WebsiteDirectory, AddFindVisit) {
  WebsiteDirectory dir;
  dir.add(portal_site());
  dir.add(image_site());
  EXPECT_EQ(dir.size(), 2u);
  ASSERT_NE(dir.find("ultratorrents.com"), nullptr);
  EXPECT_EQ(dir.find("nope.com"), nullptr);

  const auto view = dir.visit("ultratorrents.com");
  ASSERT_TRUE(view.has_value());
  EXPECT_TRUE(view->torrent_index);
  EXPECT_TRUE(view->signup_form);
  EXPECT_TRUE(view->tracker_links);
  EXPECT_TRUE(view->ad_banners);
  EXPECT_TRUE(view->donation_button);
  EXPECT_TRUE(view->vip_offer);
  EXPECT_FALSE(view->image_galleries);

  const auto gallery = dir.visit("pixsor.com");
  ASSERT_TRUE(gallery.has_value());
  EXPECT_FALSE(gallery->torrent_index);
  EXPECT_TRUE(gallery->image_galleries);
}

TEST(WebsiteDirectory, VisitUnknownDomain) {
  WebsiteDirectory dir;
  EXPECT_FALSE(dir.visit("ghost.example").has_value());
}

TEST(WebsiteDirectory, RejectsDuplicatesAndEmpty) {
  WebsiteDirectory dir;
  dir.add(portal_site());
  EXPECT_THROW(dir.add(portal_site()), std::invalid_argument);
  Website empty;
  EXPECT_THROW(dir.add(empty), std::invalid_argument);
}

TEST(WebsiteDirectory, HttpExchangeRevealsAdNetworks) {
  WebsiteDirectory dir;
  dir.add(portal_site());
  const auto headers = dir.http_exchange("ultratorrents.com");
  ASSERT_GE(headers.size(), 3u);
  EXPECT_EQ(headers[0].name, "Status");
  EXPECT_EQ(headers[0].value, "200 OK");
  bool saw_ad = false;
  for (const HttpHeader& h : headers) {
    if (h.name == "X-Third-Party-Request" &&
        h.value.find("adserve-one.example") != std::string::npos) {
      saw_ad = true;
    }
  }
  EXPECT_TRUE(saw_ad);
  EXPECT_EQ(dir.third_parties("ultratorrents.com").size(), 2u);
}

TEST(WebsiteDirectory, HttpExchange404ForUnknown) {
  WebsiteDirectory dir;
  const auto headers = dir.http_exchange("ghost.example");
  ASSERT_EQ(headers.size(), 1u);
  EXPECT_EQ(headers[0].value, "404 Not Found");
  EXPECT_TRUE(dir.third_parties("ghost.example").empty());
}

TEST(WebsiteDirectory, AllDomainsSorted) {
  WebsiteDirectory dir;
  dir.add(portal_site());
  dir.add(image_site());
  const auto domains = dir.all_domains();
  ASSERT_EQ(domains.size(), 2u);
  EXPECT_EQ(domains[0], "pixsor.com");
  EXPECT_EQ(domains[1], "ultratorrents.com");
}

TEST(BusinessTypeNames, Rendering) {
  EXPECT_EQ(to_string(BusinessType::PrivateBtPortal), "BT Portal");
  EXPECT_EQ(to_string(BusinessType::ImageHosting), "Image Hosting");
}

TEST(Appraisal, EstimatesAreDeterministic) {
  const AppraisalService service("svc", 1.0, 0.3);
  const Website site = portal_site();
  const SiteEstimate a = service.estimate(site);
  const SiteEstimate b = service.estimate(site);
  EXPECT_DOUBLE_EQ(a.value_usd, b.value_usd);
  EXPECT_DOUBLE_EQ(a.daily_income_usd, b.daily_income_usd);
  EXPECT_DOUBLE_EQ(a.daily_visits, b.daily_visits);
}

TEST(Appraisal, DifferentServicesDisagree) {
  const AppraisalPanel panel = AppraisalPanel::standard();
  ASSERT_EQ(panel.size(), 6u);
  const auto estimates = panel.all_estimates(portal_site());
  ASSERT_EQ(estimates.size(), 6u);
  bool any_difference = false;
  for (std::size_t i = 1; i < estimates.size(); ++i) {
    if (estimates[i].value_usd != estimates[0].value_usd) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Appraisal, PanelAverageTracksTruthWithinNoise) {
  const AppraisalPanel panel = AppraisalPanel::standard();
  // Average over many sites: the panel mean should track truth within the
  // configured bias/noise envelope (roughly a factor of two).
  double ratio_sum = 0;
  int sites = 0;
  for (int i = 0; i < 60; ++i) {
    Website site = portal_site();
    site.domain = "site" + std::to_string(i) + ".com";
    const SiteEstimate avg = panel.average(site);
    ratio_sum += avg.value_usd / site.value_usd;
    ++sites;
  }
  const double mean_ratio = ratio_sum / sites;
  EXPECT_GT(mean_ratio, 0.6);
  EXPECT_LT(mean_ratio, 1.8);
}

TEST(Appraisal, ZeroTruthStaysZero) {
  Website site = portal_site();
  site.daily_income_usd = 0.0;
  const SiteEstimate avg = AppraisalPanel::standard().average(site);
  EXPECT_EQ(avg.daily_income_usd, 0.0);
  EXPECT_GT(avg.value_usd, 0.0);
}

TEST(Appraisal, DirectoryLookupVariant) {
  WebsiteDirectory dir;
  dir.add(portal_site());
  const AppraisalPanel panel = AppraisalPanel::standard();
  EXPECT_TRUE(panel.average(dir, "ultratorrents.com").has_value());
  EXPECT_FALSE(panel.average(dir, "ghost.example").has_value());
}

}  // namespace
}  // namespace btpub
