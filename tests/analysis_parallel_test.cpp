// Determinism proof for the parallel batch-analysis engine: every analysis
// pass — identity tables, business classification, the seeding panel,
// downloader demographics, top-publisher consumption — produces results
// byte-identical to a serial run at any thread count, over all three data
// sources (pointer-heavy Dataset, in-memory CompactDataset view, and an
// mmap-ed snapshot reloaded from disk). Shards cover contiguous index
// spans and merge back in span order; RNG-consuming passes draw serially
// before fanning out; these tests pin both contracts.
//
// Thread count for the parallel side defaults to 4 and can be overridden
// with BTPUB_TEST_THREADS (the TSan CI job exercises 4).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>

#include "analysis/classify.hpp"
#include "analysis/contribution.hpp"
#include "analysis/demographics.hpp"
#include "analysis/groups.hpp"
#include "analysis/session.hpp"
#include "core/ecosystem.hpp"
#include "crawler/compact_dataset.hpp"
#include "crawler/dataset_mmap.hpp"

namespace btpub {
namespace {

std::size_t parallel_threads() {
  if (const char* env = std::getenv("BTPUB_TEST_THREADS")) {
    const auto n = std::strtoull(env, nullptr, 10);
    if (n > 1) return static_cast<std::size_t>(n);
  }
  return 4;
}

ScenarioConfig small_scenario() {
  ScenarioConfig config = ScenarioConfig::spoofed(7);
  config.window = days(3);
  config.population.regular_publishers /= 4;
  return config;
}

void expect_identity_eq(const IdentityAnalysis& a, const IdentityAnalysis& b,
                        const std::string& what) {
  ASSERT_EQ(a.usernames().size(), b.usernames().size()) << what;
  for (std::size_t i = 0; i < a.usernames().size(); ++i) {
    const UsernameStats& x = a.usernames()[i];
    const UsernameStats& y = b.usernames()[i];
    ASSERT_EQ(x.username, y.username) << what << " username " << i;
    ASSERT_EQ(x.torrents, y.torrents) << what << " " << x.username;
    ASSERT_EQ(x.content_count, y.content_count) << what << " " << x.username;
    ASSERT_EQ(x.download_count, y.download_count) << what << " " << x.username;
    ASSERT_EQ(x.ips, y.ips) << what << " " << x.username;
    ASSERT_EQ(x.banned, y.banned) << what << " " << x.username;
  }
  ASSERT_EQ(a.ips().size(), b.ips().size()) << what;
  for (std::size_t i = 0; i < a.ips().size(); ++i) {
    const IpStats& x = a.ips()[i];
    const IpStats& y = b.ips()[i];
    ASSERT_EQ(x.ip, y.ip) << what << " ip row " << i;
    ASSERT_EQ(x.torrents, y.torrents) << what << " " << x.ip.to_string();
    ASSERT_EQ(x.content_count, y.content_count) << what << " " << x.ip.to_string();
    ASSERT_EQ(x.usernames, y.usernames) << what << " " << x.ip.to_string();
    ASSERT_EQ(x.banned_usernames, y.banned_usernames)
        << what << " " << x.ip.to_string();
  }
  EXPECT_EQ(a.top(), b.top()) << what;
  EXPECT_EQ(a.compromised_in_top(), b.compromised_in_top()) << what;
  EXPECT_EQ(a.fake_usernames(), b.fake_usernames()) << what;
  EXPECT_EQ(a.fake_ips(), b.fake_ips()) << what;
  EXPECT_EQ(a.top_hp(), b.top_hp()) << what;
  EXPECT_EQ(a.top_ci(), b.top_ci()) << what;
  EXPECT_EQ(a.total_content(), b.total_content()) << what;
  EXPECT_EQ(a.total_downloads(), b.total_downloads()) << what;
  for (TargetGroup g : {TargetGroup::All, TargetGroup::Fake, TargetGroup::Top,
                        TargetGroup::TopHP, TargetGroup::TopCI}) {
    EXPECT_EQ(a.share_of(g).content, b.share_of(g).content) << what;
    EXPECT_EQ(a.share_of(g).downloads, b.share_of(g).downloads) << what;
  }
}

void expect_profiles_eq(const ClassificationResult& a,
                        const ClassificationResult& b,
                        const std::string& what) {
  ASSERT_EQ(a.profiles.size(), b.profiles.size()) << what;
  for (std::size_t i = 0; i < a.profiles.size(); ++i) {
    const PublisherProfile& x = a.profiles[i];
    const PublisherProfile& y = b.profiles[i];
    ASSERT_EQ(x.username, y.username) << what << " profile " << i;
    EXPECT_EQ(x.cls, y.cls) << what << " " << x.username;
    EXPECT_EQ(x.domain, y.domain) << what << " " << x.username;
    EXPECT_EQ(x.in_textbox, y.in_textbox) << what << " " << x.username;
    EXPECT_EQ(x.in_filename, y.in_filename) << what << " " << x.username;
    EXPECT_EQ(x.in_payload, y.in_payload) << what << " " << x.username;
    EXPECT_EQ(x.ads, y.ads) << what << " " << x.username;
    EXPECT_EQ(x.donations, y.donations) << what << " " << x.username;
    EXPECT_EQ(x.vip, y.vip) << what << " " << x.username;
    EXPECT_EQ(x.signup, y.signup) << what << " " << x.username;
    EXPECT_EQ(x.private_tracker, y.private_tracker) << what << " " << x.username;
    EXPECT_EQ(x.ad_networks, y.ad_networks) << what << " " << x.username;
    EXPECT_EQ(x.content_count, y.content_count) << what << " " << x.username;
    EXPECT_EQ(x.download_count, y.download_count) << what << " " << x.username;
    EXPECT_EQ(x.dominant_language, y.dominant_language)
        << what << " " << x.username;
  }
}

void expect_box_eq(const BoxStats& a, const BoxStats& b,
                   const std::string& what) {
  EXPECT_EQ(a.min, b.min) << what;
  EXPECT_EQ(a.p25, b.p25) << what;
  EXPECT_EQ(a.median, b.median) << what;
  EXPECT_EQ(a.p75, b.p75) << what;
  EXPECT_EQ(a.max, b.max) << what;
  EXPECT_EQ(a.count, b.count) << what;
}

void expect_panel_eq(const std::vector<SeedingBox>& a,
                     const std::vector<SeedingBox>& b,
                     const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].group, b[i].group) << what << " box " << i;
    EXPECT_EQ(a[i].publishers, b[i].publishers) << what << " box " << i;
    expect_box_eq(a[i].seeding_time_hours, b[i].seeding_time_hours, what);
    expect_box_eq(a[i].parallel_torrents, b[i].parallel_torrents, what);
    expect_box_eq(a[i].aggregated_session_hours, b[i].aggregated_session_hours,
                  what);
  }
}

void expect_demographics_eq(const DownloaderDemographics& a,
                            const DownloaderDemographics& b,
                            const std::string& what) {
  EXPECT_EQ(a.total_distinct_ips, b.total_distinct_ips) << what;
  EXPECT_EQ(a.located_ips, b.located_ips) << what;
  for (const auto& [rows_a, rows_b] :
       {std::pair{&a.by_country, &b.by_country},
        std::pair{&a.by_isp, &b.by_isp}}) {
    ASSERT_EQ(rows_a->size(), rows_b->size()) << what;
    for (std::size_t i = 0; i < rows_a->size(); ++i) {
      EXPECT_EQ((*rows_a)[i].label, (*rows_b)[i].label) << what << " row " << i;
      EXPECT_EQ((*rows_a)[i].downloaders, (*rows_b)[i].downloaders)
          << what << " " << (*rows_a)[i].label;
      EXPECT_EQ((*rows_a)[i].share, (*rows_b)[i].share)
          << what << " " << (*rows_a)[i].label;
    }
  }
}

class AnalysisParallelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ecosystem_ = new Ecosystem(small_scenario());
    ecosystem_->build();
    dataset_ = new Dataset(ecosystem_->crawl());
    compact_ = new CompactDataset(compact_dataset(*dataset_));
    mmap_path_ = (std::filesystem::temp_directory_path() /
                  "btpub_analysis_parallel_test.ds.mmap")
                     .string();
    save_mmap_snapshot(*compact_, mmap_path_);
    mapped_ = new MappedDataset(mmap_path_);
  }
  static void TearDownTestSuite() {
    delete mapped_;
    delete compact_;
    delete dataset_;
    delete ecosystem_;
    mapped_ = nullptr;
    compact_ = nullptr;
    dataset_ = nullptr;
    ecosystem_ = nullptr;
    std::filesystem::remove(mmap_path_);
  }

  static const GeoDb& geo() { return ecosystem_->geo(); }

  static Ecosystem* ecosystem_;
  static Dataset* dataset_;
  static CompactDataset* compact_;
  static MappedDataset* mapped_;
  static std::string mmap_path_;
};

Ecosystem* AnalysisParallelTest::ecosystem_ = nullptr;
Dataset* AnalysisParallelTest::dataset_ = nullptr;
CompactDataset* AnalysisParallelTest::compact_ = nullptr;
MappedDataset* AnalysisParallelTest::mapped_ = nullptr;
std::string AnalysisParallelTest::mmap_path_;

TEST_F(AnalysisParallelTest, IdentityByteIdenticalAcrossThreads) {
  const IdentityAnalysis serial(*dataset_, geo(), 100, {}, 1);
  // 3 is deliberately coprime with typical torrent counts: shard
  // boundaries land mid-run everywhere, so any merge-order dependence
  // would show.
  for (const std::size_t threads : {std::size_t{3}, parallel_threads()}) {
    expect_identity_eq(serial, IdentityAnalysis(*dataset_, geo(), 100, {}, threads),
                       "dataset @" + std::to_string(threads));
  }
}

TEST_F(AnalysisParallelTest, IdentityByteIdenticalAcrossSources) {
  const IdentityAnalysis serial(*dataset_, geo(), 100, {}, 1);
  const std::size_t threads = parallel_threads();
  expect_identity_eq(
      serial, IdentityAnalysis(compact_->view(), geo(), 100, {}, threads),
      "compact view");
  expect_identity_eq(
      serial, IdentityAnalysis(mapped_->view(), geo(), 100, {}, threads),
      "mmap reload");
}

TEST_F(AnalysisParallelTest, ClassifyByteIdentical) {
  const IdentityAnalysis identity(*dataset_, geo(), 100, {}, 1);
  const WebsiteDirectory& websites = ecosystem_->websites();
  // The torrent sample is drawn serially in top() order before the
  // fan-out, so the same-seeded rng must land on the same torrents at
  // every thread count.
  auto classify_dataset = [&](std::size_t threads) {
    Rng rng(123);
    return classify_top_publishers(*dataset_, identity, websites, 2, rng,
                                   threads);
  };
  const ClassificationResult serial = classify_dataset(1);
  expect_profiles_eq(serial, classify_dataset(parallel_threads()),
                     "dataset parallel");
  for (const CompactDatasetView& view : {compact_->view(), mapped_->view()}) {
    Rng rng(123);
    expect_profiles_eq(serial,
                       classify_top_publishers(view, identity, websites, 2,
                                               rng, parallel_threads()),
                       "view parallel");
  }
}

TEST_F(AnalysisParallelTest, SeedingPanelByteIdentical) {
  const IdentityAnalysis identity(*dataset_, geo(), 100, {}, 1);
  auto panel_dataset = [&](std::size_t threads) {
    Rng rng(99);
    return seeding_panel(*dataset_, identity, 50, rng, hours(4), threads);
  };
  const auto serial = panel_dataset(1);
  expect_panel_eq(serial, panel_dataset(parallel_threads()), "dataset parallel");
  for (const CompactDatasetView& view : {compact_->view(), mapped_->view()}) {
    Rng rng(99);
    expect_panel_eq(serial,
                    seeding_panel(view, identity, 50, rng, hours(4),
                                  parallel_threads()),
                    "view parallel");
  }
}

TEST_F(AnalysisParallelTest, SeedingMetricsMatchAcrossSources) {
  const IdentityAnalysis identity(*dataset_, geo(), 100, {}, 1);
  for (const UsernameStats& stats : identity.usernames()) {
    const SeedingMetrics a = seeding_metrics(*dataset_, stats.torrents);
    for (const CompactDatasetView& view : {compact_->view(), mapped_->view()}) {
      const SeedingMetrics b = seeding_metrics(view, stats.torrents);
      ASSERT_EQ(a.avg_seeding_hours, b.avg_seeding_hours) << stats.username;
      ASSERT_EQ(a.avg_parallel_torrents, b.avg_parallel_torrents)
          << stats.username;
      ASSERT_EQ(a.aggregated_session_hours, b.aggregated_session_hours)
          << stats.username;
      ASSERT_EQ(a.torrents_with_data, b.torrents_with_data) << stats.username;
    }
  }
}

TEST_F(AnalysisParallelTest, DemographicsByteIdentical) {
  const DownloaderDemographics serial =
      downloader_demographics(*dataset_, geo(), 10, 1);
  expect_demographics_eq(
      serial, downloader_demographics(*dataset_, geo(), 10, parallel_threads()),
      "dataset parallel");
  for (const CompactDatasetView& view : {compact_->view(), mapped_->view()}) {
    expect_demographics_eq(
        serial, downloader_demographics(view, geo(), 10, parallel_threads()),
        "view parallel");
  }
}

TEST_F(AnalysisParallelTest, ConsumptionByteIdentical) {
  const IdentityAnalysis identity(*dataset_, geo(), 100, {}, 1);
  const TopConsumptionStats serial =
      top_publisher_consumption(*dataset_, identity, 100, 1);
  auto expect_eq = [&](const TopConsumptionStats& other,
                       const std::string& what) {
    EXPECT_EQ(serial.considered, other.considered) << what;
    EXPECT_EQ(serial.zero_downloads, other.zero_downloads) << what;
    EXPECT_EQ(serial.under_five_downloads, other.under_five_downloads) << what;
  };
  expect_eq(top_publisher_consumption(*dataset_, identity, 100,
                                      parallel_threads()),
            "dataset parallel");
  for (const CompactDatasetView& view : {compact_->view(), mapped_->view()}) {
    expect_eq(top_publisher_consumption(view, identity, 100, parallel_threads()),
              "view parallel");
  }
}

TEST_F(AnalysisParallelTest, ZeroThreadsMeansHardwareConcurrency) {
  // threads = 0 resolves to hardware concurrency; the result must still be
  // the serial bytes.
  expect_identity_eq(IdentityAnalysis(*dataset_, geo(), 100, {}, 1),
                     IdentityAnalysis(*dataset_, geo(), 100, {}, 0),
                     "threads=0");
}

}  // namespace
}  // namespace btpub
