// BEP 15 UDP tracker protocol: packet formats and the endpoint state
// machine (connect handshake, connection-id expiry, announce, errors).
#include <gtest/gtest.h>

#include "torrent/wire.hpp"
#include "tracker/udp.hpp"
#include "tracker/udp_server.hpp"

namespace btpub {
namespace {

TEST(UdpPackets, ConnectRequestRoundTrip) {
  UdpConnectRequest req;
  req.transaction_id = 0xDEADBEEF;
  const std::string wire = req.encode();
  ASSERT_EQ(wire.size(), 16u);
  // Magic constant in the first 8 bytes, big-endian.
  EXPECT_EQ(static_cast<unsigned char>(wire[0]), 0x00);
  EXPECT_EQ(static_cast<unsigned char>(wire[2]), 0x04);
  EXPECT_EQ(static_cast<unsigned char>(wire[3]), 0x17);
  const auto decoded = UdpConnectRequest::decode(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->transaction_id, 0xDEADBEEF);
}

TEST(UdpPackets, ConnectRequestRejectsBadMagicOrSize) {
  UdpConnectRequest req;
  std::string wire = req.encode();
  wire[0] = 0x7f;
  EXPECT_FALSE(UdpConnectRequest::decode(wire).has_value());
  EXPECT_FALSE(UdpConnectRequest::decode("short").has_value());
}

TEST(UdpPackets, ConnectResponseRoundTrip) {
  UdpConnectResponse res;
  res.transaction_id = 42;
  res.connection_id = 0x0123456789ABCDEFull;
  const auto decoded = UdpConnectResponse::decode(res.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->transaction_id, 42u);
  EXPECT_EQ(decoded->connection_id, 0x0123456789ABCDEFull);
}

TEST(UdpPackets, AnnounceRequestRoundTrip) {
  UdpAnnounceRequest req;
  req.connection_id = 99;
  req.transaction_id = 7;
  req.infohash = Sha1::hash("udp torrent");
  req.peer_id = Handshake::make_peer_id(5);
  req.downloaded = 1000;
  req.left = 2000;
  req.uploaded = 3000;
  req.event = 2;
  req.ip = IpAddress(1, 2, 3, 4).value();
  req.key = 0xCAFE;
  req.num_want = 50;
  req.port = 6881;
  const std::string wire = req.encode();
  ASSERT_EQ(wire.size(), 98u);
  const auto decoded = UdpAnnounceRequest::decode(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->connection_id, 99u);
  EXPECT_EQ(decoded->infohash, req.infohash);
  EXPECT_EQ(decoded->peer_id, req.peer_id);
  EXPECT_EQ(decoded->left, 2000u);
  EXPECT_EQ(decoded->event, 2u);
  EXPECT_EQ(decoded->num_want, 50u);
  EXPECT_EQ(decoded->port, 6881);
}

TEST(UdpPackets, AnnounceResponseRoundTrip) {
  UdpAnnounceResponse res;
  res.transaction_id = 11;
  res.interval = 900;
  res.leechers = 12;
  res.seeders = 3;
  res.peers = {{IpAddress(10, 0, 0, 1), 6881}, {IpAddress(10, 0, 0, 2), 51413}};
  const auto decoded = UdpAnnounceResponse::decode(res.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->interval, 900u);
  EXPECT_EQ(decoded->peers, res.peers);
}

TEST(UdpPackets, AnnounceResponseRejectsRaggedPeerList) {
  UdpAnnounceResponse res;
  res.peers = {{IpAddress(10, 0, 0, 1), 6881}};
  std::string wire = res.encode();
  wire.pop_back();
  EXPECT_FALSE(UdpAnnounceResponse::decode(wire).has_value());
}

TEST(UdpPackets, ScrapeRequestRoundTrip) {
  UdpScrapeRequest req;
  req.connection_id = 77;
  req.transaction_id = 13;
  req.infohashes = {Sha1::hash("a"), Sha1::hash("b"), Sha1::hash("c")};
  const std::string wire = req.encode();
  ASSERT_EQ(wire.size(), 16u + 3 * 20);
  const auto decoded = UdpScrapeRequest::decode(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->connection_id, 77u);
  EXPECT_EQ(decoded->transaction_id, 13u);
  EXPECT_EQ(decoded->infohashes, req.infohashes);
}

TEST(UdpPackets, ScrapeRequestRejectsEmptyRaggedAndOversized) {
  UdpScrapeRequest req;
  req.infohashes = {Sha1::hash("x")};
  std::string wire = req.encode();
  EXPECT_FALSE(UdpScrapeRequest::decode(wire.substr(0, 16)).has_value());
  wire.pop_back();  // ragged infohash list
  EXPECT_FALSE(UdpScrapeRequest::decode(wire).has_value());
  req.infohashes.assign(UdpScrapeRequest::kMaxInfohashes + 1, Sha1::hash("y"));
  EXPECT_FALSE(UdpScrapeRequest::decode(req.encode()).has_value());
}

TEST(UdpPackets, ScrapeResponseRoundTrip) {
  UdpScrapeResponse res;
  res.transaction_id = 21;
  res.entries = {{5, 120, 31}, {0, 0, 0}};
  const std::string wire = res.encode();
  ASSERT_EQ(wire.size(), 8u + 2 * 12);
  EXPECT_EQ(udp_response_action(wire), UdpAction::Scrape);
  const auto decoded = UdpScrapeResponse::decode(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->transaction_id, 21u);
  EXPECT_EQ(decoded->entries, res.entries);
}

TEST(UdpPackets, ScrapeResponseRejectsRaggedEntries) {
  UdpScrapeResponse res;
  res.entries = {{1, 2, 3}};
  std::string wire = res.encode();
  wire.pop_back();
  EXPECT_FALSE(UdpScrapeResponse::decode(wire).has_value());
}

TEST(UdpPackets, ErrorRoundTripAndActionPeek) {
  UdpErrorResponse err;
  err.transaction_id = 3;
  err.message = "slow down";
  const std::string wire = err.encode();
  EXPECT_EQ(udp_response_action(wire), UdpAction::Error);
  const auto decoded = UdpErrorResponse::decode(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->message, "slow down");
  EXPECT_FALSE(udp_response_action("ab").has_value());
}

// ---- endpoint state machine ----

class UdpEndpointTest : public ::testing::Test {
 protected:
  UdpEndpointTest()
      : tracker_(TrackerConfig{}, Rng(4)), endpoint_(tracker_, Rng(5)) {
    swarm_ = Swarm(Sha1::hash("udp swarm"), 32, 0);
    for (std::uint32_t i = 1; i <= 40; ++i) {
      PeerSession s;
      s.endpoint = Endpoint{IpAddress(0x0A000000 + i), 6881};
      s.arrive = 0;
      s.depart = days(10);
      if (i == 1) s.complete_at = 0;
      swarm_.add_session(s);
    }
    swarm_.finalize();
    tracker_.host_swarm(swarm_);
  }

  std::uint64_t connect(const Endpoint& from, SimTime now) {
    UdpConnectRequest req;
    req.transaction_id = 1;
    const std::string response = endpoint_.handle(req.encode(), from, now);
    const auto decoded = UdpConnectResponse::decode(response);
    EXPECT_TRUE(decoded.has_value());
    return decoded ? decoded->connection_id : 0;
  }

  std::string announce(std::uint64_t connection_id, const Endpoint& from,
                       SimTime now, std::uint32_t num_want = 25) {
    UdpAnnounceRequest req;
    req.connection_id = connection_id;
    req.transaction_id = 2;
    req.infohash = swarm_.infohash();
    req.port = from.port;
    req.num_want = num_want;
    return endpoint_.handle(req.encode(), from, now);
  }

  Tracker tracker_;
  UdpTrackerEndpoint endpoint_;
  Swarm swarm_;
};

TEST_F(UdpEndpointTest, ConnectThenAnnounce) {
  const Endpoint client{IpAddress(9, 9, 9, 9), 7000};
  const std::uint64_t id = connect(client, 100);
  const std::string response = announce(id, client, 150);
  const auto decoded = UdpAnnounceResponse::decode(response);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->seeders, 1u);
  EXPECT_EQ(decoded->leechers, 39u);
  EXPECT_EQ(decoded->peers.size(), 25u);
  EXPECT_EQ(decoded->transaction_id, 2u);
}

TEST_F(UdpEndpointTest, AnnounceWithoutConnectFails) {
  const Endpoint client{IpAddress(9, 9, 9, 9), 7000};
  const std::string response = announce(0xBADBAD, client, 100);
  const auto err = UdpErrorResponse::decode(response);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->message, "invalid connection id");
}

TEST_F(UdpEndpointTest, ConnectionIdExpires) {
  const Endpoint client{IpAddress(9, 9, 9, 9), 7000};
  const std::uint64_t id = connect(client, 100);
  const SimTime later = 100 + UdpTrackerEndpoint::kConnectionTtl + 1;
  const auto err = UdpErrorResponse::decode(announce(id, client, later));
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->message, "invalid connection id");
}

TEST_F(UdpEndpointTest, ConnectionIdValidAtExactTtlBoundary) {
  const Endpoint client{IpAddress(9, 9, 9, 9), 7000};
  const std::uint64_t id = connect(client, 100);
  // BEP 15: a connection id is good for two minutes — inclusive. One past
  // the boundary is the first rejected instant.
  const SimTime boundary = 100 + UdpTrackerEndpoint::kConnectionTtl;
  const auto ok = UdpAnnounceResponse::decode(announce(id, client, boundary));
  ASSERT_TRUE(ok.has_value());
  const auto err =
      UdpErrorResponse::decode(announce(id, client, boundary + 1));
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->message, "invalid connection id");
}

TEST_F(UdpEndpointTest, StaleConnectionsArePrunedOnConnect) {
  for (std::uint32_t i = 0; i < 50; ++i) {
    connect(Endpoint{IpAddress(0x09000000 + i), 7000}, 100);
  }
  EXPECT_EQ(endpoint_.active_connections(), 50u);
  // A single handshake past every TTL sweeps the whole table.
  const SimTime later = 100 + UdpTrackerEndpoint::kConnectionTtl + 1;
  connect(Endpoint{IpAddress(9, 0, 0, 99), 7000}, later);
  EXPECT_EQ(endpoint_.active_connections(), 1u);
}

TEST_F(UdpEndpointTest, ConnectionIdBoundToSenderAddress) {
  const Endpoint alice{IpAddress(9, 9, 9, 9), 7000};
  const Endpoint mallory{IpAddress(6, 6, 6, 6), 7000};
  const std::uint64_t id = connect(alice, 100);
  const auto err = UdpErrorResponse::decode(announce(id, mallory, 120));
  ASSERT_TRUE(err.has_value());  // spoofed announce rejected
}

TEST_F(UdpEndpointTest, DefaultNumWantUsesTrackerCap) {
  const Endpoint client{IpAddress(9, 9, 9, 8), 7000};
  const std::uint64_t id = connect(client, 100);
  const auto decoded =
      UdpAnnounceResponse::decode(announce(id, client, 150, ~0u));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->peers.size(), 40u);  // whole (small) swarm
}

TEST_F(UdpEndpointTest, TrackerFailuresSurfaceAsErrors) {
  const Endpoint client{IpAddress(9, 9, 9, 7), 7000};
  const std::uint64_t id = connect(client, 100);
  UdpAnnounceRequest req;
  req.connection_id = id;
  req.transaction_id = 5;
  req.infohash = Sha1::hash("not hosted");
  req.port = client.port;
  const auto err =
      UdpErrorResponse::decode(endpoint_.handle(req.encode(), client, 150));
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->message, "unregistered torrent");
  EXPECT_EQ(err->transaction_id, 5u);
}

TEST_F(UdpEndpointTest, ScrapeReturnsSwarmCountersInRequestOrder) {
  const Endpoint client{IpAddress(9, 9, 9, 5), 7000};
  const std::uint64_t id = connect(client, 100);
  UdpScrapeRequest req;
  req.connection_id = id;
  req.transaction_id = 9;
  req.infohashes = {Sha1::hash("not hosted"), swarm_.infohash()};
  const auto res =
      UdpScrapeResponse::decode(endpoint_.handle(req.encode(), client, 150));
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->transaction_id, 9u);
  ASSERT_EQ(res->entries.size(), 2u);
  // Unknown infohash scrapes as zeros, in position.
  EXPECT_EQ(res->entries[0], UdpScrapeEntry{});
  EXPECT_EQ(res->entries[1].seeders, 1u);
  EXPECT_EQ(res->entries[1].leechers, 39u);
  EXPECT_EQ(res->entries[1].completed, 40u);  // total sessions ever
}

TEST_F(UdpEndpointTest, ScrapeAgreesWithBencodedScrape) {
  const Endpoint client{IpAddress(9, 9, 9, 4), 7000};
  const std::uint64_t id = connect(client, 100);
  UdpScrapeRequest req;
  req.connection_id = id;
  req.transaction_id = 1;
  req.infohashes = {swarm_.infohash()};
  const auto res =
      UdpScrapeResponse::decode(endpoint_.handle(req.encode(), client, 150));
  ASSERT_TRUE(res.has_value());
  const auto counts = tracker_.scrape_counts(swarm_.infohash(), 150);
  ASSERT_TRUE(counts.has_value());
  EXPECT_EQ(res->entries[0].seeders, counts->complete);
  EXPECT_EQ(res->entries[0].leechers, counts->incomplete);
  EXPECT_EQ(res->entries[0].completed, counts->downloaded);
}

TEST_F(UdpEndpointTest, ScrapeWithoutConnectFails) {
  const Endpoint client{IpAddress(9, 9, 9, 3), 7000};
  UdpScrapeRequest req;
  req.connection_id = 0xBADBAD;
  req.transaction_id = 4;
  req.infohashes = {swarm_.infohash()};
  const auto err =
      UdpErrorResponse::decode(endpoint_.handle(req.encode(), client, 100));
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->message, "invalid connection id");
  EXPECT_EQ(err->transaction_id, 4u);
}

TEST_F(UdpEndpointTest, MalformedDatagramGetsError) {
  const Endpoint client{IpAddress(9, 9, 9, 6), 7000};
  const auto err =
      UdpErrorResponse::decode(endpoint_.handle("junk", client, 100));
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->message, "malformed datagram");
}

}  // namespace
}  // namespace btpub
