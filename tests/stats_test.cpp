// Tests for descriptive statistics used by the analysis pipeline.
#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace btpub {
namespace {

TEST(Percentile, EmptyIsZero) {
  EXPECT_EQ(percentile({}, 50.0), 0.0);
}

TEST(Percentile, SingleValue) {
  const std::vector<double> v{7.0};
  EXPECT_EQ(percentile(v, 0.0), 7.0);
  EXPECT_EQ(percentile(v, 50.0), 7.0);
  EXPECT_EQ(percentile(v, 100.0), 7.0);
}

TEST(Percentile, LinearInterpolation) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
}

TEST(Percentile, UnsortedInput) {
  const std::vector<double> v{9.0, 1.0, 5.0, 3.0, 7.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 9.0);
}

TEST(Percentile, ClampsOutOfRangeQ) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 150.0), 3.0);
}

TEST(MeanStddev, KnownValues) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  EXPECT_NEAR(stddev(v), 2.138, 0.001);
}

TEST(MeanStddev, DegenerateInputs) {
  EXPECT_EQ(mean({}), 0.0);
  EXPECT_EQ(stddev({}), 0.0);
  const std::vector<double> one{3.0};
  EXPECT_EQ(stddev(one), 0.0);
}

TEST(BoxStats, FiveNumberSummary) {
  std::vector<double> v;
  for (int i = 1; i <= 101; ++i) v.push_back(static_cast<double>(i));
  const BoxStats b = box_stats(v);
  EXPECT_DOUBLE_EQ(b.min, 1.0);
  EXPECT_DOUBLE_EQ(b.p25, 26.0);
  EXPECT_DOUBLE_EQ(b.median, 51.0);
  EXPECT_DOUBLE_EQ(b.p75, 76.0);
  EXPECT_DOUBLE_EQ(b.max, 101.0);
  EXPECT_EQ(b.count, 101u);
}

TEST(BoxStats, Empty) {
  const BoxStats b = box_stats({});
  EXPECT_EQ(b.count, 0u);
  EXPECT_EQ(b.median, 0.0);
}

TEST(SummaryRow, MinMedianAvgMax) {
  const std::vector<double> v{1.0, 2.0, 3.0, 10.0};
  const SummaryRow s = summary_row(v);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_DOUBLE_EQ(s.avg, 4.0);
  EXPECT_DOUBLE_EQ(s.max, 10.0);
  EXPECT_EQ(s.count, 4u);
}

TEST(Gini, PerfectEquality) {
  const std::vector<double> v{5.0, 5.0, 5.0, 5.0};
  EXPECT_NEAR(gini(v), 0.0, 1e-12);
}

TEST(Gini, MaximalSkew) {
  // One holder of everything among n: G = (n-1)/n.
  const std::vector<double> v{0.0, 0.0, 0.0, 100.0};
  EXPECT_NEAR(gini(v), 0.75, 1e-12);
}

TEST(Gini, KnownIntermediate) {
  const std::vector<double> v{1.0, 3.0};
  // G = (2*(1*1+2*3)/(2*4)) - 3/2 = 14/8 - 1.5 = 0.25.
  EXPECT_NEAR(gini(v), 0.25, 1e-12);
}

TEST(Gini, DegenerateInputs) {
  EXPECT_EQ(gini({}), 0.0);
  const std::vector<double> one{4.0};
  EXPECT_EQ(gini(one), 0.0);
}

TEST(TopShareCurve, BasicShape) {
  // 10 publishers: one with 91 files, nine with 1 file.
  std::vector<double> contributions{91, 1, 1, 1, 1, 1, 1, 1, 1, 1};
  const std::vector<double> xs{10.0, 100.0};
  const auto curve = top_share_curve(contributions, xs);
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_DOUBLE_EQ(curve[0].top_percent, 10.0);
  EXPECT_DOUBLE_EQ(curve[0].content_percent, 91.0);
  EXPECT_DOUBLE_EQ(curve[1].content_percent, 100.0);
}

TEST(TopShareCurve, MonotoneNonDecreasing) {
  std::vector<double> contributions;
  for (int i = 0; i < 200; ++i) contributions.push_back(i % 17 + 1.0);
  const std::vector<double> xs{1, 3, 10, 20, 40, 60, 80, 100};
  const auto curve = top_share_curve(contributions, xs);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].content_percent, curve[i - 1].content_percent);
  }
  EXPECT_NEAR(curve.back().content_percent, 100.0, 1e-9);
}

TEST(TopShareCurve, EmptyPopulation) {
  const std::vector<double> xs{50.0};
  const auto curve = top_share_curve({}, xs);
  ASSERT_EQ(curve.size(), 1u);
  EXPECT_EQ(curve[0].content_percent, 0.0);
}

TEST(TopKShare, Basics) {
  const std::vector<double> v{10, 30, 60};
  EXPECT_DOUBLE_EQ(top_k_share(v, 1), 0.6);
  EXPECT_DOUBLE_EQ(top_k_share(v, 2), 0.9);
  EXPECT_DOUBLE_EQ(top_k_share(v, 3), 1.0);
  EXPECT_DOUBLE_EQ(top_k_share(v, 99), 1.0);
  EXPECT_DOUBLE_EQ(top_k_share(v, 0), 0.0);
  EXPECT_DOUBLE_EQ(top_k_share({}, 5), 0.0);
}

TEST(HistogramTest, CountsInRangeSamples) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);  // bucket 0
  h.add(9.9);  // bucket 4
  h.add(5.0);  // bucket 2
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.observed(), 3u);
  EXPECT_EQ(h.counts[0], 1u);
  EXPECT_EQ(h.counts[2], 1u);
  EXPECT_EQ(h.counts[4], 1u);
  EXPECT_DOUBLE_EQ(h.fraction(2), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(h.fraction(7), 0.0);  // out of range index
}

TEST(HistogramTest, OutOfRangeGoesToUnderOverflowNotEdgeBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(-3.0);  // below lo
  h.add(42.0);  // at/above hi
  h.add(10.0);  // hi itself is exclusive
  h.add(std::nan(""));
  h.add(5.0);  // the only in-range sample
  EXPECT_EQ(h.underflow, 1u);
  EXPECT_EQ(h.overflow, 2u);
  EXPECT_EQ(h.nan_count, 1u);
  EXPECT_EQ(h.counts[0], 0u);  // tails no longer corrupted
  EXPECT_EQ(h.counts[4], 0u);
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.observed(), 5u);
  // Fractions denominate over everything observed.
  EXPECT_DOUBLE_EQ(h.fraction(2), 0.2);
}

TEST(Rendering, ToStringContainsFields) {
  BoxStats b;
  b.min = 1;
  b.median = 3;
  b.max = 9;
  b.count = 5;
  const std::string s = to_string(b);
  EXPECT_NE(s.find("med=3"), std::string::npos);
  EXPECT_NE(s.find("n=5"), std::string::npos);
}

TEST(SamplePoisson, NonPositiveMeanIsZero) {
  Rng rng(1);
  EXPECT_EQ(sample_poisson(0.0, rng), 0u);
  EXPECT_EQ(sample_poisson(-3.5, rng), 0u);
  // Degenerate means consume no randomness: the stream is untouched.
  Rng fresh(1);
  EXPECT_EQ(rng.next(), fresh.next());
}

TEST(SamplePoisson, DeterministicGivenSeed) {
  Rng a(99), b(99);
  for (double mean : {0.3, 5.0, 63.9, 64.0, 500.0}) {
    EXPECT_EQ(sample_poisson(mean, a), sample_poisson(mean, b)) << mean;
  }
}

TEST(SamplePoisson, MeanMatchesBelowAndAboveCutoff) {
  // Pin the exact-inversion regime just under the cutoff and the normal
  // approximation just over it; both must track the requested mean.
  Rng rng(7);
  for (double mean :
       {kPoissonNormalCutoff - 1.0, kPoissonNormalCutoff + 1.0}) {
    const int trials = 4000;
    double sum = 0.0;
    for (int i = 0; i < trials; ++i) {
      sum += static_cast<double>(sample_poisson(mean, rng));
    }
    const double got = sum / trials;
    // Standard error is sqrt(mean/trials) ~ 0.13; allow 5 sigma.
    EXPECT_NEAR(got, mean, 0.65) << mean;
  }
}

TEST(SamplePoisson, CutoffBoundaryUsesNormalPath) {
  // At exactly the cutoff the normal approximation takes over: one
  // gaussian draw, never the open-ended multiplication loop. The variance
  // must still be ~mean (a constant would also pass the mean check).
  Rng rng(11);
  const double mean = kPoissonNormalCutoff;
  const int trials = 4000;
  std::vector<double> draws;
  draws.reserve(trials);
  for (int i = 0; i < trials; ++i) {
    draws.push_back(static_cast<double>(sample_poisson(mean, rng)));
  }
  const double sd = stddev(draws);
  EXPECT_NEAR(sd * sd, mean, mean * 0.25);
}

class PercentileSweep : public ::testing::TestWithParam<double> {};

TEST_P(PercentileSweep, WithinDataRange) {
  std::vector<double> v;
  for (int i = 0; i < 57; ++i) v.push_back(i * 3.0 - 20.0);
  const double p = percentile(v, GetParam());
  EXPECT_GE(p, -20.0);
  EXPECT_LE(p, 56 * 3.0 - 20.0);
}

INSTANTIATE_TEST_SUITE_P(Quantiles, PercentileSweep,
                         ::testing::Values(0.0, 10.0, 25.0, 50.0, 75.0, 90.0,
                                           99.0, 100.0));

}  // namespace
}  // namespace btpub
