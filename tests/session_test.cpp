// Appendix-A estimator: discovery probability, session reconstruction,
// seeding metrics.
#include "analysis/session.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace btpub {
namespace {

TEST(DiscoveryProbability, PaperOperatingPoint) {
  // Appendix A: W=50, N=165 -> m=13 queries give P > 0.99.
  EXPECT_GT(discovery_probability(50, 165, 13), 0.99);
  EXPECT_LT(discovery_probability(50, 165, 12), 0.99);
  EXPECT_EQ(queries_for_probability(50, 165, 0.99), 13u);
}

TEST(DiscoveryProbability, Monotonicity) {
  double prev = 0.0;
  for (std::size_t m = 1; m <= 30; ++m) {
    const double p = discovery_probability(50, 165, m);
    EXPECT_GT(p, prev);
    prev = p;
  }
  EXPECT_GT(discovery_probability(100, 165, 5), discovery_probability(50, 165, 5));
}

TEST(DiscoveryProbability, Extremes) {
  EXPECT_EQ(discovery_probability(200, 100, 1), 1.0);  // W >= N: certain
  EXPECT_EQ(discovery_probability(0, 100, 10), 0.0);
  EXPECT_EQ(discovery_probability(50, 0, 10), 0.0);
  EXPECT_EQ(queries_for_probability(200, 100, 0.99), 1u);
}

TEST(QueriesForProbability, DegenerateInputsReturnSentinelNotUB) {
  // w <= 0: the publisher can never appear in a reply window; the naive
  // formula divides by log(1) == 0 and casts inf to size_t (UB).
  EXPECT_EQ(queries_for_probability(0, 165, 0.99), kQueriesUnreachable);
  EXPECT_EQ(queries_for_probability(-5, 165, 0.99), kQueriesUnreachable);
  // Empty or negative swarm: nothing to discover.
  EXPECT_EQ(queries_for_probability(50, 0, 0.99), kQueriesUnreachable);
  EXPECT_EQ(queries_for_probability(50, -1, 0.99), kQueriesUnreachable);
  // NaN anywhere: unanswerable.
  const double nan = std::nan("");
  EXPECT_EQ(queries_for_probability(nan, 165, 0.99), kQueriesUnreachable);
  EXPECT_EQ(queries_for_probability(50, nan, 0.99), kQueriesUnreachable);
  EXPECT_EQ(queries_for_probability(50, 165, nan), kQueriesUnreachable);
  // A nonpositive target is met before the first query.
  EXPECT_EQ(queries_for_probability(50, 165, 0.0), 0u);
  EXPECT_EQ(queries_for_probability(50, 165, -0.5), 0u);
  // target >= 1 is clamped to just below certainty, still finite.
  EXPECT_LT(queries_for_probability(50, 165, 1.0), kQueriesUnreachable);
}

class ProbabilityFormula
    : public ::testing::TestWithParam<std::tuple<double, double, std::size_t>> {};

TEST_P(ProbabilityFormula, MatchesClosedForm) {
  const auto [w, n, m] = GetParam();
  const double expected = 1.0 - std::pow(1.0 - w / n, static_cast<double>(m));
  EXPECT_NEAR(discovery_probability(w, n, m), expected, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Points, ProbabilityFormula,
    ::testing::Values(std::make_tuple(50.0, 165.0, 1u),
                      std::make_tuple(50.0, 165.0, 13u),
                      std::make_tuple(200.0, 1000.0, 5u),
                      std::make_tuple(10.0, 2000.0, 40u)));

TEST(ReconstructSessions, EmptyInput) {
  EXPECT_TRUE(reconstruct_sessions({}, hours(4)).empty());
}

TEST(ReconstructSessions, SingleSighting) {
  const std::vector<SimTime> sightings{hours(2)};
  const auto sessions = reconstruct_sessions(sightings, hours(4), minutes(15));
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].start, hours(2));
  EXPECT_EQ(sessions[0].end, hours(2) + minutes(15));
}

TEST(ReconstructSessions, GapSplitsSessions) {
  const std::vector<SimTime> sightings{0, hours(1), hours(2),
                                       hours(8), hours(9)};
  const auto sessions = reconstruct_sessions(sightings, hours(4), minutes(15));
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0].start, 0);
  EXPECT_EQ(sessions[0].end, hours(2) + minutes(15));
  EXPECT_EQ(sessions[1].start, hours(8));
  EXPECT_EQ(sessions[1].end, hours(9) + minutes(15));
}

TEST(ReconstructSessions, GapExactlyAtThresholdDoesNotSplit) {
  const std::vector<SimTime> sightings{0, hours(4)};
  EXPECT_EQ(reconstruct_sessions(sightings, hours(4)).size(), 1u);
  const std::vector<SimTime> beyond{0, hours(4) + 1};
  EXPECT_EQ(reconstruct_sessions(beyond, hours(4)).size(), 2u);
}

TEST(ReconstructSessions, ThresholdSensitivity) {
  // The paper checked 2h/4h/6h thresholds; a 3h gap merges at 4h/6h and
  // splits at 2h.
  const std::vector<SimTime> sightings{0, hours(3), hours(6)};
  EXPECT_EQ(reconstruct_sessions(sightings, hours(2)).size(), 3u);
  EXPECT_EQ(reconstruct_sessions(sightings, hours(4)).size(), 1u);
  EXPECT_EQ(reconstruct_sessions(sightings, hours(6)).size(), 1u);
}

TEST(ReconstructSessions, ShuffledInputMatchesSorted) {
  // Regression: the sweep assumed ascending input; a merged multi-vantage
  // timeline arriving out of order fabricated a phantom session split at
  // every backwards jump. Sorted and shuffled inputs must now reconstruct
  // identical intervals.
  const std::vector<SimTime> sorted{0,        minutes(30), hours(1),
                                    hours(8), hours(9),    hours(20)};
  const auto expected = reconstruct_sessions(sorted, hours(4), minutes(15));
  ASSERT_EQ(expected.size(), 3u);

  std::vector<SimTime> shuffled = sorted;
  Rng rng(7);
  for (int round = 0; round < 20; ++round) {
    rng.shuffle(shuffled);
    const auto sessions = reconstruct_sessions(shuffled, hours(4), minutes(15));
    ASSERT_EQ(sessions.size(), expected.size());
    for (std::size_t i = 0; i < sessions.size(); ++i) {
      EXPECT_EQ(sessions[i].start, expected[i].start);
      EXPECT_EQ(sessions[i].end, expected[i].end);
    }
  }
}

TEST(ReconstructSessions, ReversedInputNoPhantomSessions) {
  // The worst case of the old bug: strictly descending sightings split into
  // one phantom session per element.
  const std::vector<SimTime> reversed{hours(2), hours(1), 0};
  const auto sessions = reconstruct_sessions(reversed, hours(4), minutes(15));
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].start, 0);
  EXPECT_EQ(sessions[0].end, hours(2) + minutes(15));
}

TEST(ReconstructSessions, NegativeQueryGapClampedToZero) {
  // A negative gap would emit end < start intervals whose negative lengths
  // *subtract* seeding time downstream; it is clamped to zero instead.
  const std::vector<SimTime> sightings{hours(2)};
  const auto sessions = reconstruct_sessions(sightings, hours(4), -minutes(15));
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].start, hours(2));
  EXPECT_EQ(sessions[0].end, hours(2));
  EXPECT_EQ(sessions[0].length(), 0);
}

TEST(UnionLength, ZeroLengthIntervals) {
  // Zero-length intervals contribute nothing but must not corrupt the
  // cover sweep around them.
  EXPECT_EQ(union_length({{5, 5}}), 0);
  EXPECT_EQ(union_length({{5, 5}, {5, 5}}), 0);
  EXPECT_EQ(union_length({{0, 10}, {5, 5}}), 10);        // nested point
  EXPECT_EQ(union_length({{5, 5}, {0, 10}}), 10);
  EXPECT_EQ(union_length({{0, 0}, {0, 10}, {10, 10}}), 10);
  EXPECT_EQ(union_length({{0, 5}, {7, 7}, {9, 12}}), 8);  // point in a gap
}

TEST(UnionLength, DisjointAndOverlapping) {
  EXPECT_EQ(union_length({}), 0);
  EXPECT_EQ(union_length({{0, 10}}), 10);
  EXPECT_EQ(union_length({{0, 10}, {20, 30}}), 20);
  EXPECT_EQ(union_length({{0, 10}, {5, 15}}), 15);
  EXPECT_EQ(union_length({{0, 30}, {5, 15}}), 30);      // nested
  EXPECT_EQ(union_length({{5, 15}, {0, 10}}), 15);      // unsorted input
  EXPECT_EQ(union_length({{0, 10}, {10, 20}}), 20);     // touching
}

class SeedingMetricsTest : public ::testing::Test {
 protected:
  SeedingMetricsTest() {
    dataset_.style = DatasetStyle::Pb10;
    // Torrent 0: publisher sighted continuously for ~6h.
    dataset_.torrents.emplace_back();
    dataset_.downloaders.emplace_back();
    std::vector<SimTime> s0;
    for (int i = 0; i <= 24; ++i) s0.push_back(i * minutes(15));
    dataset_.publisher_sightings.push_back(std::move(s0));
    // Torrent 1: overlaps the first 2 hours.
    dataset_.torrents.emplace_back();
    dataset_.downloaders.emplace_back();
    std::vector<SimTime> s1;
    for (int i = 0; i <= 8; ++i) s1.push_back(i * minutes(15));
    dataset_.publisher_sightings.push_back(std::move(s1));
    // Torrent 2: no sightings (publisher never identified).
    dataset_.torrents.emplace_back();
    dataset_.downloaders.emplace_back();
    dataset_.publisher_sightings.emplace_back();
  }
  Dataset dataset_;
};

TEST_F(SeedingMetricsTest, PerTorrentAndAggregates) {
  const std::vector<std::size_t> indices{0, 1, 2};
  const SeedingMetrics m = seeding_metrics(dataset_, indices, hours(4));
  EXPECT_EQ(m.torrents_with_data, 2u);
  // Torrent 0 session: 6h15m; torrent 1: 2h15m; avg = 4.25h.
  EXPECT_NEAR(m.avg_seeding_hours, 4.25, 0.01);
  // Union = 6h15m (torrent 1 nested in torrent 0).
  EXPECT_NEAR(m.aggregated_session_hours, 6.25, 0.01);
  EXPECT_NEAR(m.avg_parallel_torrents, 8.5 / 6.25, 0.01);
}

TEST_F(SeedingMetricsTest, SingleSightingTorrentCountsOneQueryGapSession) {
  // A publisher seen exactly once is present for one nominal query gap —
  // never zero hours, and never a phantom extra session.
  dataset_.torrents.emplace_back();
  dataset_.downloaders.emplace_back();
  dataset_.publisher_sightings.push_back({days(1)});
  const std::vector<std::size_t> indices{3};
  const SeedingMetrics m = seeding_metrics(dataset_, indices, hours(4));
  EXPECT_EQ(m.torrents_with_data, 1u);
  EXPECT_NEAR(m.avg_seeding_hours, 0.25, 1e-9);          // 15 min
  EXPECT_NEAR(m.aggregated_session_hours, 0.25, 1e-9);
  EXPECT_NEAR(m.avg_parallel_torrents, 1.0, 1e-9);
}

TEST_F(SeedingMetricsTest, NoDataPublisher) {
  const std::vector<std::size_t> indices{2};
  const SeedingMetrics m = seeding_metrics(dataset_, indices, hours(4));
  EXPECT_EQ(m.torrents_with_data, 0u);
  EXPECT_EQ(m.avg_seeding_hours, 0.0);
  EXPECT_EQ(m.aggregated_session_hours, 0.0);
}

}  // namespace
}  // namespace btpub
