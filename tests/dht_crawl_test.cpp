// The trackerless crawl vantage end to end: Ecosystem::dht_crawl()
// determinism, the tracker-vs-DHT cross-check, and the spoofed-scenario
// detection the vantage exists for.
#include <gtest/gtest.h>

#include <sstream>

#include "core/ecosystem.hpp"
#include "crawler/cross_check.hpp"
#include "crawler/dataset_io.hpp"
#include "publisher/profile.hpp"

namespace btpub {
namespace {

ScenarioConfig tiny(std::uint64_t seed) {
  // A cut-down quick scenario so the double-build tests stay fast.
  ScenarioConfig config = ScenarioConfig::quick(seed);
  config.name = "tiny";
  config.window = days(4);
  config.population.regular_publishers = 150;
  config.population.portal_owners = 2;
  config.population.other_web = 2;
  config.population.top_altruistic = 4;
  config.population.fake_farms = 2;
  config.population.fake_usernames = 10;
  config.population.compromised_usernames = 1;
  return config;
}

TEST(DhtCrawlTest, RepeatedCrawlsAreByteIdentical) {
  const ScenarioConfig config = tiny(91);
  Ecosystem ecosystem(config);
  ecosystem.build();
  // dht_crawl() rebuilds its overlay per call, so back-to-back runs from
  // one ecosystem must serialise to the same bytes...
  const Dataset first = ecosystem.dht_crawl();
  const Dataset second = ecosystem.dht_crawl();
  std::ostringstream bytes_first, bytes_second;
  save_dataset(first, bytes_first);
  save_dataset(second, bytes_second);
  EXPECT_EQ(bytes_first.str(), bytes_second.str());

  // ...and so must a crawl of a freshly built identical ecosystem.
  Ecosystem rebuilt(config);
  rebuilt.build();
  std::ostringstream bytes_rebuilt;
  save_dataset(rebuilt.dht_crawl(), bytes_rebuilt);
  EXPECT_EQ(bytes_first.str(), bytes_rebuilt.str());
}

TEST(DhtCrawlTest, DhtCrawlDoesNotPerturbTrackerCrawl) {
  const ScenarioConfig config = tiny(92);
  Ecosystem plain(config);
  plain.build();
  std::ostringstream tracker_only;
  save_dataset(plain.crawl(), tracker_only);

  Ecosystem dual(config);
  dual.build();
  dual.dht_crawl();  // interleave a DHT crawl before the tracker crawl
  std::ostringstream tracker_after_dht;
  save_dataset(dual.crawl(), tracker_after_dht);
  EXPECT_EQ(tracker_only.str(), tracker_after_dht.str());
}

TEST(DhtCrawlTest, DatasetCarriesVantageNameAndTorrents) {
  Ecosystem ecosystem(tiny(93));
  ecosystem.build();
  const Dataset dataset = ecosystem.dht_crawl();
  EXPECT_NE(dataset.name.find("-dht"), std::string::npos);
  EXPECT_GT(dataset.torrent_count(), 0u);
  // The DHT vantage has no bitfield probes: it never identifies
  // publishers, it only enumerates swarm membership.
  for (std::size_t i = 0; i < dataset.torrent_count(); ++i) {
    EXPECT_FALSE(dataset.torrents[i].publisher_ip.has_value()) << i;
  }
}

class SpoofedCrossCheckTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioConfig config = tiny(94);
    config.fake_spoofed_peers = 25;  // the spoofed() scenario knob
    ecosystem_ = new Ecosystem(config);
    ecosystem_->build();
    tracker_ = new Dataset(ecosystem_->crawl());
    dht_ = new Dataset(ecosystem_->dht_crawl());
    report_ = new CrossCheckReport(cross_check(*tracker_, *dht_));
  }
  static void TearDownTestSuite() {
    delete report_;
    delete dht_;
    delete tracker_;
    delete ecosystem_;
    report_ = nullptr;
    dht_ = nullptr;
    tracker_ = nullptr;
    ecosystem_ = nullptr;
  }

  static Ecosystem* ecosystem_;
  static Dataset* tracker_;
  static Dataset* dht_;
  static CrossCheckReport* report_;
};

Ecosystem* SpoofedCrossCheckTest::ecosystem_ = nullptr;
Dataset* SpoofedCrossCheckTest::tracker_ = nullptr;
Dataset* SpoofedCrossCheckTest::dht_ = nullptr;
CrossCheckReport* SpoofedCrossCheckTest::report_ = nullptr;

TEST_F(SpoofedCrossCheckTest, FlagsFakePublisherTorrents) {
  // A fake publisher feeds the tracker spoofed decoy peers; none of those
  // addresses can complete a DHT announce (the token handshake stores the
  // datagram source). Every fake torrent the tracker saw a real swarm for
  // must be flagged.
  std::size_t fake_total = 0, fake_flagged = 0;
  for (const TorrentCrossCheck& check : report_->torrents) {
    if (!is_fake(ecosystem_->truth(check.portal_id).publisher_class)) continue;
    ++fake_total;
    if (check.flagged) ++fake_flagged;
  }
  ASSERT_GT(fake_total, 0u);
  // The signature fires on nearly all fake torrents (a few tiny swarms
  // fall under the min-tracker-peers judgement threshold).
  EXPECT_GE(fake_flagged * 10, fake_total * 8)
      << fake_flagged << "/" << fake_total;
}

TEST_F(SpoofedCrossCheckTest, GenuineTorrentsAreNotFlagged) {
  std::size_t genuine_total = 0, genuine_flagged = 0;
  for (const TorrentCrossCheck& check : report_->torrents) {
    if (is_fake(ecosystem_->truth(check.portal_id).publisher_class)) continue;
    ++genuine_total;
    if (check.flagged) ++genuine_flagged;
  }
  ASSERT_GT(genuine_total, 0u);
  EXPECT_EQ(genuine_flagged, 0u);
}

TEST_F(SpoofedCrossCheckTest, FlaggedTorrentsShowAConcreteSignature) {
  // Decoy IPs inflate the tracker's distinct-IP counts but never appear in
  // a get_peers reply. Each flag therefore rests on one of two concrete
  // disagreements: low set overlap, or an identified publisher the DHT
  // never returned (large genuine-looking swarms dilute the overlap above
  // the threshold, but the publisher signature still fires).
  for (const TorrentCrossCheck& check : report_->torrents) {
    if (!check.flagged) continue;
    const bool publisher_missing =
        check.tracker_publisher_ip.has_value() && !check.publisher_in_dht;
    EXPECT_TRUE(check.overlap < 0.5 || publisher_missing) << check.portal_id;
    // Either way the DHT could not confirm the full tracker view.
    EXPECT_GT(check.tracker_peers, check.common) << check.portal_id;
  }
}

TEST_F(SpoofedCrossCheckTest, ReportIsSortedAndCountsAgree) {
  std::size_t flagged = 0;
  for (std::size_t i = 0; i < report_->torrents.size(); ++i) {
    if (i > 0) {
      EXPECT_LT(report_->torrents[i - 1].portal_id,
                report_->torrents[i].portal_id);
    }
    if (report_->torrents[i].flagged) ++flagged;
  }
  EXPECT_EQ(report_->flagged_count(), flagged);
  EXPECT_EQ(report_->matched_count(), report_->torrents.size());
}

}  // namespace
}  // namespace btpub
