// Metainfo (.torrent) construction, parsing and infohash behaviour.
#include "torrent/metainfo.hpp"

#include <gtest/gtest.h>

#include "bencode/bencode.hpp"

namespace btpub {
namespace {

Metainfo sample_single() {
  return Metainfo::make("http://tr.example/announce", "Some.Movie.2010.avi",
                        {{"Some.Movie.2010.avi", 734003200}}, 256 * 1024,
                        "salt0");
}

Metainfo sample_multi() {
  return Metainfo::make(
      "http://tr.example/announce", "Some.Movie.2010",
      {{"Some.Movie.2010.avi", 734003200},
       {"Some.Movie.2010.nfo", 4096},
       {"Visit-www-divxatope-com.txt", 120}},
      256 * 1024, "salt1");
}

TEST(Metainfo, SingleFileRoundTrip) {
  const Metainfo original = sample_single();
  const Metainfo parsed = Metainfo::parse(original.encode());
  EXPECT_EQ(parsed.name(), original.name());
  EXPECT_EQ(parsed.announce_url(), original.announce_url());
  EXPECT_EQ(parsed.piece_length(), original.piece_length());
  EXPECT_EQ(parsed.piece_count(), original.piece_count());
  EXPECT_EQ(parsed.total_size(), original.total_size());
  EXPECT_FALSE(parsed.is_multi_file());
  EXPECT_EQ(parsed.infohash(), original.infohash());
}

TEST(Metainfo, MultiFileRoundTrip) {
  const Metainfo original = sample_multi();
  const Metainfo parsed = Metainfo::parse(original.encode());
  EXPECT_TRUE(parsed.is_multi_file());
  ASSERT_EQ(parsed.files().size(), 3u);
  EXPECT_EQ(parsed.files()[2].path, "Visit-www-divxatope-com.txt");
  EXPECT_EQ(parsed.files()[2].length, 120);
  EXPECT_EQ(parsed.infohash(), original.infohash());
  EXPECT_EQ(parsed.total_size(), original.total_size());
}

TEST(Metainfo, PieceCountCoversTotalSize) {
  const Metainfo m = sample_single();
  const auto pieces = static_cast<std::int64_t>(m.piece_count());
  EXPECT_GE(pieces * m.piece_length(), m.total_size());
  EXPECT_LT((pieces - 1) * m.piece_length(), m.total_size());
}

TEST(Metainfo, InfohashIsStable) {
  EXPECT_EQ(sample_single().infohash(), sample_single().infohash());
}

TEST(Metainfo, InfohashSensitivity) {
  const Metainfo base = sample_single();
  const Metainfo renamed =
      Metainfo::make("http://tr.example/announce", "Other.Name.avi",
                     {{"Other.Name.avi", 734003200}}, 256 * 1024, "salt0");
  const Metainfo resalted =
      Metainfo::make("http://tr.example/announce", "Some.Movie.2010.avi",
                     {{"Some.Movie.2010.avi", 734003200}}, 256 * 1024, "salt9");
  EXPECT_NE(base.infohash(), renamed.infohash());
  EXPECT_NE(base.infohash(), resalted.infohash());
}

TEST(Metainfo, AnnounceNotPartOfInfohash) {
  const Metainfo a = sample_single();
  const Metainfo b =
      Metainfo::make("http://other-tracker.example/announce",
                     "Some.Movie.2010.avi", {{"Some.Movie.2010.avi", 734003200}},
                     256 * 1024, "salt0");
  EXPECT_EQ(a.infohash(), b.infohash());
}

TEST(Metainfo, PathsWithDirectories) {
  const Metainfo m = Metainfo::make("http://tr/a", "pack",
                                    {{"disc1/part1.rar", 1000},
                                     {"disc1/part2.rar", 1000},
                                     {"readme/info.txt", 10}},
                                    16 * 1024, "s");
  const Metainfo parsed = Metainfo::parse(m.encode());
  ASSERT_EQ(parsed.files().size(), 3u);
  EXPECT_EQ(parsed.files()[0].path, "disc1/part1.rar");
  EXPECT_EQ(parsed.files()[2].path, "readme/info.txt");
}

TEST(Metainfo, MakeValidation) {
  EXPECT_THROW(Metainfo::make("http://tr/a", "x", {}), std::invalid_argument);
  EXPECT_THROW(Metainfo::make("http://tr/a", "x", {{"x", 10}}, 0),
               std::invalid_argument);
}

TEST(Metainfo, ParseRejectsMalformed) {
  EXPECT_THROW(Metainfo::parse("not bencode"), bencode::Error);
  // Valid bencode, missing info dict.
  EXPECT_THROW(Metainfo::parse("d8:announce4:httpe"), bencode::Error);
  // Info dict missing required fields.
  const std::string no_name = "d4:infod6:lengthi5e12:piece lengthi1e6:pieces0:ee";
  EXPECT_THROW(Metainfo::parse(no_name), std::invalid_argument);
}

TEST(Metainfo, ParseRejectsBadPiecesBlob) {
  // pieces blob whose length is not a multiple of 20.
  bencode::Dict info;
  info.emplace("name", "x");
  info.emplace("piece length", std::int64_t{16384});
  info.emplace("pieces", "short");
  info.emplace("length", std::int64_t{5});
  bencode::Dict root;
  root.emplace("announce", "http://t/a");
  root.emplace("info", bencode::Value(std::move(info)));
  EXPECT_THROW(Metainfo::parse(bencode::encode(bencode::Value(std::move(root)))),
               std::invalid_argument);
}

TEST(Metainfo, EncodedFormIsCanonicalBencode) {
  // decode(encode()) must not throw and re-encode identically.
  const std::string bytes = sample_multi().encode();
  EXPECT_EQ(bencode::encode(bencode::decode(bytes)), bytes);
}

class PieceLengthSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(PieceLengthSweep, RoundTripAcrossPieceLengths) {
  const Metainfo m = Metainfo::make("http://tr/a", "f", {{"f", 1000000}},
                                    GetParam(), "s");
  const Metainfo parsed = Metainfo::parse(m.encode());
  EXPECT_EQ(parsed.piece_count(), m.piece_count());
  EXPECT_EQ(parsed.infohash(), m.infohash());
}

INSTANTIATE_TEST_SUITE_P(Lengths, PieceLengthSweep,
                         ::testing::Values(16 * 1024, 256 * 1024, 1 << 20,
                                           999));

}  // namespace
}  // namespace btpub
