// Tests for the ASCII table renderer.
#include "util/table.hpp"

#include <gtest/gtest.h>

namespace btpub {
namespace {

TEST(AsciiTable, RendersTitleHeaderAndRows) {
  AsciiTable t("Demo");
  t.header({"ISP", "Share"});
  t.row({"OVH", "15.2%"});
  t.row({"Comcast", "2.9%"});
  const std::string out = t.render();
  EXPECT_NE(out.find("== Demo =="), std::string::npos);
  EXPECT_NE(out.find("| ISP"), std::string::npos);
  EXPECT_NE(out.find("| OVH"), std::string::npos);
  EXPECT_NE(out.find("| Comcast"), std::string::npos);
}

TEST(AsciiTable, AlignsColumns) {
  AsciiTable t("Align");
  t.header({"A", "B"});
  t.row({"xx", "y"});
  t.row({"x", "yyyy"});
  const std::string out = t.render();
  // Every data line must have the same length (uniform column widths).
  std::size_t expected = 0;
  std::size_t pos = 0;
  int lines = 0;
  while (pos < out.size()) {
    const std::size_t nl = out.find('\n', pos);
    const std::string line = out.substr(pos, nl - pos);
    if (!line.empty() && (line[0] == '|' || line[0] == '+')) {
      if (expected == 0) expected = line.size();
      EXPECT_EQ(line.size(), expected) << line;
      ++lines;
    }
    pos = nl + 1;
  }
  EXPECT_GE(lines, 4);
}

TEST(AsciiTable, RowsWiderThanHeaderExtendWidths) {
  AsciiTable t("Wide");
  t.header({"C"});
  t.row({"1", "2", "3"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| 1 | 2 | 3 |"), std::string::npos);
}

TEST(AsciiTable, SeparatorAndNotes) {
  AsciiTable t("Notes");
  t.header({"k", "v"});
  t.row({"a", "1"});
  t.separator();
  t.row({"b", "2"});
  t.note("paper: 30% / ours: 29%");
  const std::string out = t.render();
  EXPECT_NE(out.find("paper: 30% / ours: 29%"), std::string::npos);
  // Separator adds an extra rule line: count '+' line starts.
  int rules = 0;
  std::size_t pos = 0;
  while ((pos = out.find("\n+", pos)) != std::string::npos) {
    ++rules;
    pos += 2;
  }
  EXPECT_GE(rules, 3);
}

TEST(AsciiTable, EmptyTableStillRendersTitle) {
  AsciiTable t("Empty");
  const std::string out = t.render();
  EXPECT_NE(out.find("== Empty =="), std::string::npos);
}

}  // namespace
}  // namespace btpub
