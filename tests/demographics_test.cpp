// Downloader/publisher demographics aggregation.
#include "analysis/demographics.hpp"

#include <gtest/gtest.h>

namespace btpub {
namespace {

class DemographicsTest : public ::testing::Test {
 protected:
  DemographicsTest() {
    const IspId fr = geo_.add_isp("HostFR", IspType::HostingProvider, "FR");
    const IspId us = geo_.add_isp("EyeballUS", IspType::CommercialIsp, "US");
    const IspId de = geo_.add_isp("EyeballDE", IspType::CommercialIsp, "DE");
    geo_.add_block(CidrBlock(IpAddress(10, 0, 0, 0), 8), fr, "Paris");
    geo_.add_block(CidrBlock(IpAddress(20, 0, 0, 0), 8), us, "Denver");
    geo_.add_block(CidrBlock(IpAddress(30, 0, 0, 0), 8), de, "Berlin");
    dataset_.style = DatasetStyle::Pb10;
  }

  void add_torrent(std::optional<IpAddress> publisher,
                   std::vector<IpAddress> downloaders) {
    TorrentRecord record;
    record.portal_id = static_cast<TorrentId>(dataset_.torrents.size());
    record.username = "u" + std::to_string(record.portal_id);
    record.publisher_ip = publisher;
    dataset_.torrents.push_back(std::move(record));
    dataset_.downloaders.push_back(std::move(downloaders));
    dataset_.publisher_sightings.emplace_back();
  }

  GeoDb geo_;
  Dataset dataset_;
};

TEST_F(DemographicsTest, CountsDistinctDownloadersByCountryAndIsp) {
  add_torrent(IpAddress(10, 0, 0, 1),
              {IpAddress(20, 0, 0, 1), IpAddress(20, 0, 0, 2),
               IpAddress(30, 0, 0, 1)});
  // Repeat downloader across torrents counted once.
  add_torrent(IpAddress(10, 0, 0, 1),
              {IpAddress(20, 0, 0, 1), IpAddress(99, 0, 0, 1)});  // 99.* unmapped
  const auto demo = downloader_demographics(dataset_, geo_, 10);
  EXPECT_EQ(demo.total_distinct_ips, 4u);
  EXPECT_EQ(demo.located_ips, 3u);
  ASSERT_EQ(demo.by_country.size(), 2u);
  EXPECT_EQ(demo.by_country[0].label, "US");
  EXPECT_EQ(demo.by_country[0].downloaders, 2u);
  EXPECT_NEAR(demo.by_country[0].share, 2.0 / 3.0, 1e-9);
  EXPECT_EQ(demo.by_country[1].label, "DE");
  ASSERT_EQ(demo.by_isp.size(), 2u);
  EXPECT_EQ(demo.by_isp[0].label, "EyeballUS");
}

TEST_F(DemographicsTest, TopKTruncates) {
  add_torrent(std::nullopt, {IpAddress(20, 0, 0, 1), IpAddress(30, 0, 0, 1)});
  const auto demo = downloader_demographics(dataset_, geo_, 1);
  EXPECT_EQ(demo.by_country.size(), 1u);
  EXPECT_EQ(demo.by_isp.size(), 1u);
}

TEST_F(DemographicsTest, PublisherCountriesWeightedByTorrents) {
  add_torrent(IpAddress(10, 0, 0, 1), {});
  add_torrent(IpAddress(10, 0, 0, 2), {});
  add_torrent(IpAddress(20, 0, 0, 9), {});
  add_torrent(std::nullopt, {});
  const auto rows = publisher_countries(dataset_, geo_, 10);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].label, "FR");
  EXPECT_EQ(rows[0].downloaders, 2u);
  EXPECT_NEAR(rows[0].share, 2.0 / 3.0, 1e-9);
}

TEST_F(DemographicsTest, EmptyDatasetIsZero) {
  const auto demo = downloader_demographics(dataset_, geo_, 10);
  EXPECT_EQ(demo.total_distinct_ips, 0u);
  EXPECT_TRUE(demo.by_country.empty());
  EXPECT_TRUE(publisher_countries(dataset_, geo_, 10).empty());
}

}  // namespace
}  // namespace btpub
