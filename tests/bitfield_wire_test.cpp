// Piece bitfields and the peer-wire handshake / message framing.
#include <gtest/gtest.h>

#include "torrent/bitfield.hpp"
#include "torrent/wire.hpp"

namespace btpub {
namespace {

TEST(BitfieldTest, SetGetCount) {
  Bitfield f(10);
  EXPECT_EQ(f.size(), 10u);
  EXPECT_EQ(f.count(), 0u);
  f.set(0);
  f.set(9);
  EXPECT_TRUE(f.get(0));
  EXPECT_TRUE(f.get(9));
  EXPECT_FALSE(f.get(5));
  EXPECT_EQ(f.count(), 2u);
  f.set(9, false);
  EXPECT_EQ(f.count(), 1u);
}

TEST(BitfieldTest, OutOfRangeThrows) {
  Bitfield f(8);
  EXPECT_THROW(f.get(8), std::out_of_range);
  EXPECT_THROW(f.set(8), std::out_of_range);
}

TEST(BitfieldTest, CompleteAndFraction) {
  Bitfield f(3);
  EXPECT_FALSE(f.complete());
  f.set_prefix(3);
  EXPECT_TRUE(f.complete());
  EXPECT_DOUBLE_EQ(f.fraction(), 1.0);
  Bitfield half(4);
  half.set_prefix(2);
  EXPECT_DOUBLE_EQ(half.fraction(), 0.5);
  EXPECT_FALSE(half.complete());
  EXPECT_FALSE(Bitfield().complete());  // empty field is never complete
}

TEST(BitfieldTest, SetPrefixClamps) {
  Bitfield f(5);
  f.set_prefix(100);
  EXPECT_TRUE(f.complete());
}

TEST(BitfieldTest, WireLayoutMsbFirst) {
  Bitfield f(9);
  f.set(0);
  const std::string bytes = f.to_bytes();
  ASSERT_EQ(bytes.size(), 2u);
  EXPECT_EQ(static_cast<unsigned char>(bytes[0]), 0x80);
  EXPECT_EQ(static_cast<unsigned char>(bytes[1]), 0x00);
  f.set(8);
  EXPECT_EQ(static_cast<unsigned char>(f.to_bytes()[1]), 0x80);
}

class BitfieldRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitfieldRoundTrip, BytesRoundTrip) {
  const std::size_t n = GetParam();
  Bitfield f(n);
  for (std::size_t i = 0; i < n; i += 3) f.set(i);
  const Bitfield parsed = Bitfield::from_bytes(f.to_bytes(), n);
  EXPECT_EQ(parsed, f);
  EXPECT_EQ(parsed.count(), f.count());
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitfieldRoundTrip,
                         ::testing::Values(1u, 7u, 8u, 9u, 63u, 64u, 65u, 1000u));

TEST(BitfieldTest, FromBytesRejectsWrongLength) {
  EXPECT_THROW(Bitfield::from_bytes("ab", 8), std::invalid_argument);
  EXPECT_THROW(Bitfield::from_bytes("", 1), std::invalid_argument);
}

TEST(BitfieldTest, FromBytesRejectsNonzeroSpareBits) {
  std::string bytes(1, static_cast<char>(0xFF));  // all 8 bits set
  EXPECT_THROW(Bitfield::from_bytes(bytes, 5), std::invalid_argument);
  // 5-piece field with only valid bits set parses fine.
  std::string ok(1, static_cast<char>(0xF8));
  EXPECT_TRUE(Bitfield::from_bytes(ok, 5).complete());
}

TEST(HandshakeTest, EncodeDecodeRoundTrip) {
  Handshake hs;
  hs.infohash = Sha1::hash("some torrent");
  hs.peer_id = Handshake::make_peer_id(42);
  const std::string wire = hs.encode();
  ASSERT_EQ(wire.size(), 68u);
  const auto decoded = Handshake::decode(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->infohash, hs.infohash);
  EXPECT_EQ(decoded->peer_id, hs.peer_id);
}

TEST(HandshakeTest, RejectsMalformed) {
  EXPECT_FALSE(Handshake::decode("short").has_value());
  std::string wire = Handshake{}.encode();
  wire[0] = 5;  // wrong pstr length
  EXPECT_FALSE(Handshake::decode(wire).has_value());
  std::string wire2 = Handshake{}.encode();
  wire2[1] = 'X';  // corrupted protocol string
  EXPECT_FALSE(Handshake::decode(wire2).has_value());
}

TEST(HandshakeTest, PeerIdConventionalPrefix) {
  const auto id = Handshake::make_peer_id(7);
  EXPECT_EQ(std::string(id.begin(), id.begin() + 8), "-BP1000-");
  EXPECT_NE(Handshake::make_peer_id(7), Handshake::make_peer_id(8));
  EXPECT_EQ(Handshake::make_peer_id(7), Handshake::make_peer_id(7));
}

TEST(WireMessages, BitfieldMessageRoundTrip) {
  Bitfield f(12);
  f.set_prefix(12);
  const std::string msg = encode_bitfield_message(f);
  std::size_t pos = 0;
  const auto decoded = decode_message(msg, pos);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, WireMessageType::Bitfield);
  EXPECT_EQ(pos, msg.size());
  EXPECT_TRUE(Bitfield::from_bytes(decoded->payload, 12).complete());
}

TEST(WireMessages, HaveMessage) {
  const std::string msg = encode_have_message(0x01020304);
  std::size_t pos = 0;
  const auto decoded = decode_message(msg, pos);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, WireMessageType::Have);
  ASSERT_EQ(decoded->payload.size(), 4u);
  EXPECT_EQ(static_cast<unsigned char>(decoded->payload[0]), 0x01);
  EXPECT_EQ(static_cast<unsigned char>(decoded->payload[3]), 0x04);
}

TEST(WireMessages, TruncatedBufferReturnsNullopt) {
  const std::string msg = encode_have_message(1);
  for (std::size_t cut = 0; cut < msg.size(); ++cut) {
    std::size_t pos = 0;
    EXPECT_FALSE(decode_message(msg.substr(0, cut), pos).has_value()) << cut;
  }
}

TEST(WireMessages, UnknownIdThrows) {
  std::string msg;
  msg.push_back(0);
  msg.push_back(0);
  msg.push_back(0);
  msg.push_back(1);
  msg.push_back(21);  // unknown id
  std::size_t pos = 0;
  EXPECT_THROW(decode_message(msg, pos), std::invalid_argument);
}

TEST(WireMessages, SequentialDecode) {
  Bitfield f(4);
  f.set(1);
  const std::string stream = encode_bitfield_message(f) + encode_have_message(3);
  std::size_t pos = 0;
  const auto first = decode_message(stream, pos);
  const auto second = decode_message(stream, pos);
  ASSERT_TRUE(first && second);
  EXPECT_EQ(first->type, WireMessageType::Bitfield);
  EXPECT_EQ(second->type, WireMessageType::Have);
  EXPECT_EQ(pos, stream.size());
}

TEST(WireMessages, KeepAliveDecodes) {
  const std::string msg = encode_keepalive();
  ASSERT_EQ(msg.size(), 4u);
  std::size_t pos = 0;
  const auto decoded = decode_message(msg, pos);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, WireMessageType::KeepAlive);
  EXPECT_EQ(pos, 4u);
}

TEST(WireMessages, StateMessages) {
  for (const WireMessageType type :
       {WireMessageType::Choke, WireMessageType::Unchoke,
        WireMessageType::Interested, WireMessageType::NotInterested}) {
    const std::string msg = encode_state_message(type);
    std::size_t pos = 0;
    const auto decoded = decode_message(msg, pos);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->type, type);
    EXPECT_TRUE(decoded->payload.empty());
  }
  EXPECT_THROW(encode_state_message(WireMessageType::Piece),
               std::invalid_argument);
}

TEST(WireMessages, RequestAndCancelRoundTrip) {
  const BlockRequest request{7, 16384, 16384};
  std::size_t pos = 0;
  const auto req = decode_message(encode_request_message(request), pos);
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->type, WireMessageType::Request);
  EXPECT_EQ(parse_block_request(req->payload), request);

  pos = 0;
  const auto cancel = decode_message(encode_cancel_message(request), pos);
  ASSERT_TRUE(cancel.has_value());
  EXPECT_EQ(cancel->type, WireMessageType::Cancel);
  EXPECT_EQ(parse_block_request(cancel->payload), request);
}

TEST(WireMessages, BlockRequestRejectsBadBody) {
  EXPECT_THROW(parse_block_request("short"), std::invalid_argument);
  EXPECT_THROW(parse_block_request(std::string(16, 'x')), std::invalid_argument);
}

TEST(WireMessages, PieceMessageCarriesData) {
  std::string data = "block-bytes";
  data.push_back('\0');
  data += "more";
  std::size_t pos = 0;
  const auto decoded =
      decode_message(encode_piece_message(3, 16384, data), pos);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, WireMessageType::Piece);
  const PieceBlock block = parse_piece_block(decoded->payload);
  EXPECT_EQ(block.piece, 3u);
  EXPECT_EQ(block.begin, 16384u);
  EXPECT_EQ(block.data, data);
  EXPECT_THROW(parse_piece_block("1234567"), std::invalid_argument);
}

TEST(WireMessages, PortMessageRoundTrip) {
  std::size_t pos = 0;
  const auto decoded = decode_message(encode_port_message(6881), pos);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, WireMessageType::Port);
  EXPECT_EQ(parse_port_message(decoded->payload), 6881);
  EXPECT_THROW(parse_port_message("x"), std::invalid_argument);
}

TEST(WireMessages, PortMessageBoundaryValues) {
  // <len=3><id=9><2-byte big-endian port>; both ends of the port range
  // survive the round trip and the message is always 7 bytes on the wire.
  for (const std::uint16_t port : {std::uint16_t{1}, std::uint16_t{0xffff}}) {
    const std::string wire = encode_port_message(port);
    ASSERT_EQ(wire.size(), 7u);
    std::size_t pos = 0;
    const auto decoded = decode_message(wire, pos);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->type, WireMessageType::Port);
    EXPECT_EQ(parse_port_message(decoded->payload), port);
    EXPECT_EQ(pos, wire.size());
  }
  // Over-long payloads are rejected too, not just truncated ones.
  EXPECT_THROW(parse_port_message("abc"), std::invalid_argument);
}

TEST(WireMessages, FullDownloadConversation) {
  // A leecher fetching one piece from a seeder, message by message:
  // handshake exchange, bitfield, interested/unchoke, request, piece, have.
  const Sha1Digest infohash = Sha1::hash("conversation");
  Handshake leecher_hs;
  leecher_hs.infohash = infohash;
  leecher_hs.peer_id = Handshake::make_peer_id(1);
  Handshake seeder_hs;
  seeder_hs.infohash = infohash;
  seeder_hs.peer_id = Handshake::make_peer_id(2);

  Bitfield full(4);
  full.set_prefix(4);
  const BlockRequest want{0, 0, 16384};
  const std::string block(16384, 'd');

  const std::string seeder_stream = seeder_hs.encode() +
                                    encode_bitfield_message(full) +
                                    encode_state_message(WireMessageType::Unchoke) +
                                    encode_piece_message(0, 0, block);
  // Leecher side: parse the seeder's stream.
  ASSERT_TRUE(Handshake::decode(seeder_stream.substr(0, 68)).has_value());
  std::size_t pos = 68;
  const auto bf = decode_message(seeder_stream, pos);
  ASSERT_TRUE(bf && bf->type == WireMessageType::Bitfield);
  EXPECT_TRUE(Bitfield::from_bytes(bf->payload, 4).complete());
  const auto unchoke = decode_message(seeder_stream, pos);
  ASSERT_TRUE(unchoke && unchoke->type == WireMessageType::Unchoke);
  const auto piece = decode_message(seeder_stream, pos);
  ASSERT_TRUE(piece && piece->type == WireMessageType::Piece);
  EXPECT_EQ(parse_piece_block(piece->payload).data.size(), want.length);
  EXPECT_EQ(pos, seeder_stream.size());

  // Seeder side: parse the leecher's stream.
  const std::string leecher_stream =
      leecher_hs.encode() + encode_state_message(WireMessageType::Interested) +
      encode_request_message(want) + encode_have_message(0) + encode_keepalive();
  pos = 68;
  const auto interested = decode_message(leecher_stream, pos);
  ASSERT_TRUE(interested && interested->type == WireMessageType::Interested);
  const auto request = decode_message(leecher_stream, pos);
  ASSERT_TRUE(request && request->type == WireMessageType::Request);
  EXPECT_EQ(parse_block_request(request->payload), want);
  const auto have = decode_message(leecher_stream, pos);
  ASSERT_TRUE(have && have->type == WireMessageType::Have);
  const auto keepalive = decode_message(leecher_stream, pos);
  ASSERT_TRUE(keepalive && keepalive->type == WireMessageType::KeepAlive);
  EXPECT_EQ(pos, leecher_stream.size());
}

}  // namespace
}  // namespace btpub
