// Business classification: URL extraction channels and class assignment.
#include "analysis/classify.hpp"

#include <gtest/gtest.h>

namespace btpub {
namespace {

TEST(DomainFromTextbox, FindsUrl) {
  EXPECT_EQ(domain_from_textbox("Visit http://www.divxatope.com/ for more"),
            "divxatope.com");
  EXPECT_EQ(domain_from_textbox("x http://www.my-site.net rest"), "my-site.net");
}

TEST(DomainFromTextbox, FindsHttpsUrl) {
  // Regression: the original matcher anchored on the literal "http://www."
  // prefix, so https promotions were silently classified altruistic.
  EXPECT_EQ(domain_from_textbox("https://www.skipped.com/"), "skipped.com");
  EXPECT_EQ(domain_from_textbox("now at https://zona.to forever"), "zona.to");
}

TEST(DomainFromTextbox, FindsBareSchemeUrl) {
  // Regression: same bug, second form — no "www." presentation prefix.
  EXPECT_EQ(domain_from_textbox("seed http://divxatope.com/ thx"),
            "divxatope.com");
  EXPECT_EQ(domain_from_textbox("http://my-site.net"), "my-site.net");
}

TEST(DomainFromTextbox, SkipsBogusMatchUntilValidUrl) {
  // A non-allowlisted TLD first, a valid promotion later: the scan must not
  // stop at the first scheme occurrence.
  EXPECT_EQ(domain_from_textbox("http://bad.example then http://good.org"),
            "good.org");
  // "https" text without "://" is not a URL.
  EXPECT_EQ(domain_from_textbox("https everywhere, also http://real.com"),
            "real.com");
}

TEST(DomainFromTextbox, RejectsAbsentOrBogus) {
  EXPECT_FALSE(domain_from_textbox("no urls here").has_value());
  EXPECT_FALSE(domain_from_textbox("http://www.").has_value());
  EXPECT_FALSE(domain_from_textbox("https://www.").has_value());
  EXPECT_FALSE(domain_from_textbox("http://www.nodots/").has_value());
  EXPECT_FALSE(domain_from_textbox("https://nodots/").has_value());
  EXPECT_FALSE(domain_from_textbox("http:/missing.com").has_value());
  EXPECT_FALSE(domain_from_textbox("ftp://files.com/").has_value());
}

TEST(DomainFromTitle, FindsSuffix) {
  EXPECT_EQ(domain_from_title("Some.Movie.2010.DVDRip-divxatope.com"),
            "divxatope.com");
  EXPECT_EQ(domain_from_title("Album.FLAC-zona.to"), "zona.to");
}

TEST(DomainFromTitle, RejectsPlainTitles) {
  EXPECT_FALSE(domain_from_title("Some.Movie.2010.DVDRip.XviD-CRoWN").has_value());
  EXPECT_FALSE(domain_from_title("NoTldHere-part2").has_value());
  EXPECT_FALSE(domain_from_title("nodash.com").has_value());
}

TEST(DomainFromPayload, FindsTextFile) {
  const std::vector<std::string> files{"Movie.avi", "Movie.nfo",
                                       "Visit-www-pixsor-com.txt"};
  EXPECT_EQ(domain_from_payload(files), "pixsor.com");
}

TEST(DomainFromPayload, RejectsOtherTextFiles) {
  const std::vector<std::string> files{"Movie.avi", "readme.txt",
                                       "Visit-www-incomplete"};
  EXPECT_FALSE(domain_from_payload(files).has_value());
  EXPECT_FALSE(domain_from_payload({}).has_value());
}

TEST(FindPromotion, MergesChannels) {
  TorrentRecord record;
  record.title = "Film.2010-divxatope.com";
  record.textbox = "Download more at http://www.divxatope.com/ !";
  record.payload_filenames = {"Film.avi", "Visit-www-divxatope-com.txt"};
  const auto finding = find_promotion(record);
  ASSERT_TRUE(finding.has_value());
  EXPECT_EQ(finding->domain, "divxatope.com");
  EXPECT_TRUE(finding->in_textbox);
  EXPECT_TRUE(finding->in_filename);
  EXPECT_TRUE(finding->in_payload);
}

TEST(FindPromotion, NoneForCleanTorrent) {
  TorrentRecord record;
  record.title = "Clean.Release.2010";
  record.textbox = "Great quality, please seed";
  record.payload_filenames = {"Clean.Release.2010.avi"};
  EXPECT_FALSE(find_promotion(record).has_value());
}

class ClassifyTest : public ::testing::Test {
 protected:
  ClassifyTest() {
    const IspId isp = geo_.add_isp("Net", IspType::CommercialIsp, "US");
    geo_.add_block(CidrBlock(IpAddress(20, 0, 0, 0), 8), isp, "City");

    Website portal;
    portal.domain = "megaseed.com";
    portal.type = BusinessType::PrivateBtPortal;
    portal.requires_registration = true;
    portal.has_private_tracker = true;
    portal.has_ads = true;
    portal.ad_networks = {"adserve-one.example"};
    websites_.add(portal);

    Website gallery;
    gallery.domain = "pixsor.com";
    gallery.type = BusinessType::ImageHosting;
    gallery.has_ads = true;
    websites_.add(gallery);

    dataset_.style = DatasetStyle::Pb10;
  }

  /// Adds `n` torrents for `username`, optionally promoting `domain`.
  void add_torrents(const std::string& username, std::size_t n,
                    const std::string& domain, Language language = Language::English) {
    for (std::size_t i = 0; i < n; ++i) {
      TorrentRecord record;
      record.portal_id = static_cast<TorrentId>(dataset_.torrents.size());
      record.username = username;
      record.publisher_ip = IpAddress(20, 0, 0, 1);
      record.language = language;
      record.title = username + std::to_string(i);
      if (!domain.empty()) {
        record.textbox = "Get it at http://www." + domain + "/ now";
      }
      dataset_.torrents.push_back(std::move(record));
      dataset_.downloaders.push_back(
          std::vector<IpAddress>{IpAddress(0x31000000u + static_cast<std::uint32_t>(
                                                             dataset_.torrents.size()))});
      dataset_.publisher_sightings.emplace_back();
    }
  }

  GeoDb geo_;
  Dataset dataset_;
  WebsiteDirectory websites_;
};

TEST_F(ClassifyTest, ThreeWayClassification) {
  add_torrents("portaluser", 8, "megaseed.com");
  add_torrents("galleryuser", 7, "pixsor.com");
  add_torrents("goodguy", 6, "");
  const IdentityAnalysis identity(dataset_, geo_, 3);
  Rng rng(1);
  const auto result =
      classify_top_publishers(dataset_, identity, websites_, 5, rng);
  ASSERT_EQ(result.profiles.size(), 3u);
  std::size_t bt = 0, other = 0, altruistic = 0;
  for (const PublisherProfile& p : result.profiles) {
    switch (p.cls) {
      case BusinessClass::BtPortal:
        ++bt;
        EXPECT_EQ(p.domain, "megaseed.com");
        EXPECT_TRUE(p.signup);
        EXPECT_TRUE(p.private_tracker);
        EXPECT_TRUE(p.ads);
        EXPECT_EQ(p.ad_networks.size(), 1u);
        break;
      case BusinessClass::OtherWeb:
        ++other;
        EXPECT_EQ(p.domain, "pixsor.com");
        break;
      case BusinessClass::Altruistic:
        ++altruistic;
        EXPECT_TRUE(p.domain.empty());
        break;
    }
    EXPECT_TRUE(p.in_textbox || p.domain.empty());
  }
  EXPECT_EQ(bt, 1u);
  EXPECT_EQ(other, 1u);
  EXPECT_EQ(altruistic, 1u);
}

TEST_F(ClassifyTest, UnknownDomainDefaultsToOtherWeb) {
  add_torrents("mystery", 5, "gone.example.com");
  const IdentityAnalysis identity(dataset_, geo_, 1);
  Rng rng(2);
  const auto result =
      classify_top_publishers(dataset_, identity, websites_, 5, rng);
  ASSERT_EQ(result.profiles.size(), 1u);
  EXPECT_EQ(result.profiles[0].cls, BusinessClass::OtherWeb);
}

TEST_F(ClassifyTest, SamplingStillFindsConsistentPromoter) {
  add_torrents("bigpromo", 40, "megaseed.com");
  const IdentityAnalysis identity(dataset_, geo_, 1);
  Rng rng(3);
  const auto result =
      classify_top_publishers(dataset_, identity, websites_, 3, rng);
  ASSERT_EQ(result.profiles.size(), 1u);
  EXPECT_EQ(result.profiles[0].cls, BusinessClass::BtPortal);
  EXPECT_EQ(result.profiles[0].content_count, 40u);
}

TEST_F(ClassifyTest, DominantLanguageDetected) {
  add_torrents("esuser", 8, "megaseed.com", Language::Spanish);
  add_torrents("enuser", 8, "pixsor.com", Language::English);
  const IdentityAnalysis identity(dataset_, geo_, 2);
  Rng rng(4);
  const auto result =
      classify_top_publishers(dataset_, identity, websites_, 5, rng);
  for (const PublisherProfile& p : result.profiles) {
    if (p.username == "esuser") {
      ASSERT_TRUE(p.dominant_language.has_value());
      EXPECT_EQ(*p.dominant_language, Language::Spanish);
    } else {
      EXPECT_FALSE(p.dominant_language.has_value());  // English is default
    }
  }
}

TEST_F(ClassifyTest, SharesAgainstTotals) {
  add_torrents("portaluser", 10, "megaseed.com");
  add_torrents("goodguy", 5, "");
  const IdentityAnalysis identity(dataset_, geo_, 2);
  Rng rng(5);
  const auto result =
      classify_top_publishers(dataset_, identity, websites_, 5, rng);
  const auto shares = result.shares(identity.total_content(),
                                    identity.total_downloads());
  ASSERT_EQ(shares.size(), 3u);
  EXPECT_EQ(shares[0].cls, BusinessClass::BtPortal);
  EXPECT_NEAR(shares[0].content, 10.0 / 15.0, 1e-9);
  EXPECT_EQ(shares[2].cls, BusinessClass::Altruistic);
  EXPECT_NEAR(shares[2].content, 5.0 / 15.0, 1e-9);
}

TEST(BusinessClassNames, Rendering) {
  EXPECT_EQ(to_string(BusinessClass::BtPortal), "BT Portals");
  EXPECT_EQ(to_string(BusinessClass::Altruistic), "Altruistic");
}

}  // namespace
}  // namespace btpub
