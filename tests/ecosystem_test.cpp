// End-to-end integration: the quick scenario generated, crawled and
// analysed, with invariants checked against generator ground truth.
#include "core/ecosystem.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "analysis/classify.hpp"
#include "analysis/contribution.hpp"
#include "analysis/groups.hpp"
#include "analysis/session.hpp"

namespace btpub {
namespace {

/// One shared quick-scenario run for the whole suite (building takes a few
/// seconds; the assertions are all read-only).
class EcosystemTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    eco_ = new Ecosystem(ScenarioConfig::quick(7));
    eco_->build();
    dataset_ = new Dataset(eco_->crawl());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete eco_;
    dataset_ = nullptr;
    eco_ = nullptr;
  }

  static Ecosystem* eco_;
  static Dataset* dataset_;
};

Ecosystem* EcosystemTest::eco_ = nullptr;
Dataset* EcosystemTest::dataset_ = nullptr;

TEST_F(EcosystemTest, GeneratesSubstantialWorld) {
  EXPECT_GT(eco_->torrent_count(), 300u);
  EXPECT_EQ(dataset_->torrent_count(), eco_->torrent_count());
  EXPECT_GT(dataset_->distinct_ips_global(), 1000u);
  EXPECT_EQ(dataset_->with_username(), dataset_->torrent_count());
}

TEST_F(EcosystemTest, TruthAndDatasetAligned) {
  ASSERT_EQ(eco_->truths().size(), dataset_->torrent_count());
  for (std::size_t i = 0; i < dataset_->torrent_count(); ++i) {
    const TorrentRecord& record = dataset_->torrents[i];
    const TorrentTruth& truth = eco_->truth(record.portal_id);
    EXPECT_EQ(truth.portal_id, record.portal_id);
    // The username the crawler saw belongs to the publisher that truth says
    // published it.
    const auto it = eco_->population().owner_of_username.find(record.username);
    ASSERT_NE(it, eco_->population().owner_of_username.end());
    EXPECT_EQ(it->second, truth.publisher);
  }
}

TEST_F(EcosystemTest, IdentifiedPublisherIpsAreCorrect) {
  std::size_t identified = 0, correct = 0;
  for (std::size_t i = 0; i < dataset_->torrent_count(); ++i) {
    const TorrentRecord& record = dataset_->torrents[i];
    if (!record.publisher_ip) continue;
    ++identified;
    const TorrentTruth& truth = eco_->truth(record.portal_id);
    if (*record.publisher_ip == truth.publisher_ip) ++correct;
  }
  ASSERT_GT(identified, 100u);
  // Identification can legitimately go wrong (cross-posted swarms where a
  // downloader finished first), but must be overwhelmingly right.
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(identified), 0.9);
}

TEST_F(EcosystemTest, NattedPublishersNeverIdentifiedByProbe) {
  for (std::size_t i = 0; i < dataset_->torrent_count(); ++i) {
    const TorrentRecord& record = dataset_->torrents[i];
    const TorrentTruth& truth = eco_->truth(record.portal_id);
    if (truth.publisher_nat && record.publisher_ip) {
      // A NATed publisher cannot be probe-verified; any identified IP here
      // must be a (rare) mis-identification of another complete peer.
      EXPECT_NE(*record.publisher_ip, truth.publisher_ip);
    }
  }
}

TEST_F(EcosystemTest, FakeTorrentsGetRemovedGenuineDoNot) {
  std::size_t fake = 0, removed_fake = 0;
  for (const TorrentTruth& truth : eco_->truths()) {
    if (is_fake(truth.publisher_class)) {
      ++fake;
      if (truth.removal_time >= 0) ++removed_fake;
    } else {
      EXPECT_LT(truth.removal_time, 0);
    }
  }
  ASSERT_GT(fake, 50u);
  EXPECT_EQ(removed_fake, fake);  // moderation always catches fakes eventually
}

TEST_F(EcosystemTest, FakeDetectionPrecisionAndRecall) {
  const IdentityAnalysis identity(*dataset_, eco_->geo(), 40);
  std::size_t true_positive = 0, false_positive = 0, false_negative = 0;
  for (const UsernameStats& stats : identity.usernames()) {
    const auto owner =
        eco_->population().owner_of_username.at(stats.username);
    const bool truly_fake = is_fake(eco_->population().by_id(owner).cls);
    const bool flagged = identity.is_fake(stats.username);
    if (truly_fake && flagged) ++true_positive;
    if (!truly_fake && flagged) ++false_positive;
    if (truly_fake && !flagged) ++false_negative;
  }
  ASSERT_GT(true_positive, 20u);
  const double precision = static_cast<double>(true_positive) /
                           static_cast<double>(true_positive + false_positive);
  const double recall = static_cast<double>(true_positive) /
                        static_cast<double>(true_positive + false_negative);
  EXPECT_GT(precision, 0.95);
  EXPECT_GT(recall, 0.85);
}

TEST_F(EcosystemTest, MajorPublishersDominate) {
  const IdentityAnalysis identity(*dataset_, eco_->geo(), 40);
  const auto fake = identity.share_of(TargetGroup::Fake);
  const auto top = identity.share_of(TargetGroup::Top);
  // The paper's headline: fake + top publishers own roughly 2/3 of the
  // content and 3/4 of the downloads. Loose bands for the small scenario.
  EXPECT_GT(fake.content + top.content, 0.45);
  EXPECT_LT(fake.content + top.content, 0.9);
  EXPECT_GT(fake.downloads + top.downloads, 0.5);
  // Fake publishers alone sustain a sizeable poisoning attack.
  EXPECT_GT(fake.content, 0.15);
}

TEST_F(EcosystemTest, ContributionIsHeavilySkewed) {
  const IdentityAnalysis identity(*dataset_, eco_->geo(), 40);
  const std::vector<double> xs{3.0};
  const auto curve = contribution_curve(identity, xs);
  EXPECT_GT(curve.points[0].content_percent, 20.0);  // top 3% >> uniform
  EXPECT_GT(curve.gini, 0.5);
}

TEST_F(EcosystemTest, SessionEstimatorTracksGroundTruthSeeding) {
  // For torrents with an identified (correct) publisher IP, the Appendix-A
  // reconstruction of its seeding time must track the generator's truth.
  const SimDuration gap = hours(4);
  double total_error = 0.0;
  std::size_t measured = 0;
  for (std::size_t i = 0; i < dataset_->torrent_count(); ++i) {
    const TorrentRecord& record = dataset_->torrents[i];
    const TorrentTruth& truth = eco_->truth(record.portal_id);
    if (!record.publisher_ip || *record.publisher_ip != truth.publisher_ip) {
      continue;
    }
    const auto& sightings = dataset_->publisher_sightings[i];
    if (sightings.size() < 4) continue;
    SimDuration true_time = 0;
    for (const Interval& s : truth.seed_sessions) true_time += s.length();
    if (true_time < hours(2)) continue;
    const auto sessions = reconstruct_sessions(sightings, gap);
    SimDuration estimated = 0;
    for (const Interval& s : sessions) estimated += s.length();
    total_error += std::abs(to_hours(estimated) - to_hours(true_time)) /
                   to_hours(true_time);
    ++measured;
  }
  ASSERT_GT(measured, 30u);
  // Mean relative error under 35%: the estimator works as Appendix A argues.
  EXPECT_LT(total_error / static_cast<double>(measured), 0.35);
}

TEST_F(EcosystemTest, CrawlIsDeterministic) {
  const Dataset again = eco_->crawl();
  ASSERT_EQ(again.torrent_count(), dataset_->torrent_count());
  for (std::size_t i = 0; i < again.torrent_count(); ++i) {
    EXPECT_EQ(again.torrents[i].query_count, dataset_->torrents[i].query_count);
    EXPECT_EQ(again.downloaders[i].size(), dataset_->downloaders[i].size());
    EXPECT_EQ(again.torrents[i].publisher_ip, dataset_->torrents[i].publisher_ip);
  }
}

TEST_F(EcosystemTest, WholeRunReproducibleFromSeed) {
  Ecosystem other(ScenarioConfig::quick(7));
  other.build();
  ASSERT_EQ(other.torrent_count(), eco_->torrent_count());
  const Dataset replay = other.crawl();
  EXPECT_EQ(replay.torrent_count(), dataset_->torrent_count());
  EXPECT_EQ(replay.distinct_ips_global(), dataset_->distinct_ips_global());
  EXPECT_EQ(replay.with_publisher_ip(), dataset_->with_publisher_ip());
}

TEST_F(EcosystemTest, DifferentSeedDifferentWorld) {
  Ecosystem other(ScenarioConfig::quick(8));
  other.build();
  EXPECT_NE(other.torrent_count(), eco_->torrent_count());
}

TEST_F(EcosystemTest, ProfitDrivenClassificationRecoversGroundTruth) {
  const IdentityAnalysis identity(*dataset_, eco_->geo(), 40);
  Rng rng(5);
  const auto classification =
      classify_top_publishers(*dataset_, identity, eco_->websites(), 5, rng);
  std::size_t checked = 0, correct = 0;
  for (const PublisherProfile& profile : classification.profiles) {
    const auto owner = eco_->population().owner_of_username.at(profile.username);
    const PublisherClass truth = eco_->population().by_id(owner).cls;
    ++checked;
    const bool match =
        (profile.cls == BusinessClass::BtPortal &&
         truth == PublisherClass::TopPortalOwner) ||
        (profile.cls == BusinessClass::OtherWeb &&
         truth == PublisherClass::TopOtherWeb) ||
        (profile.cls == BusinessClass::Altruistic &&
         (truth == PublisherClass::TopAltruistic ||
          truth == PublisherClass::Regular));
    if (match) ++correct;
  }
  ASSERT_GT(checked, 10u);
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(checked), 0.9);
}

TEST_F(EcosystemTest, BuildTwiceThrows) {
  Ecosystem fresh(ScenarioConfig::quick(99));
  fresh.build();
  EXPECT_THROW(fresh.build(), std::logic_error);
}

TEST_F(EcosystemTest, CrawlBeforeBuildThrows) {
  Ecosystem fresh(ScenarioConfig::quick(100));
  EXPECT_THROW(fresh.crawl(), std::logic_error);
}

}  // namespace
}  // namespace btpub
