// Private tracker: registration, passkey auth, seeding-ratio enforcement
// and the VIP bypass (the §5.1 business model).
#include "tracker/private_tracker.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace btpub {
namespace {

constexpr std::uint64_t kMiB = 1024 * 1024;
constexpr std::uint64_t kGiB = 1024 * kMiB;

class PrivateTrackerTest : public ::testing::Test {
 protected:
  PrivateTrackerTest() : tracker_(make_config(), Rng(3)) {
    swarm_ = Swarm(Sha1::hash("private swarm"), 32, 0);
    for (std::uint32_t i = 1; i <= 30; ++i) {
      PeerSession s;
      s.endpoint = Endpoint{IpAddress(0x0A000000 + i), 6881};
      s.arrive = 0;
      s.depart = days(30);
      if (i == 1) s.complete_at = 0;
      swarm_.add_session(s);
    }
    swarm_.finalize();
    tracker_.tracker().host_swarm(swarm_);
  }

  static PrivateTrackerConfig make_config() {
    PrivateTrackerConfig config;
    config.min_ratio = 0.5;
    config.grace_bytes = static_cast<std::int64_t>(1 * kGiB);
    return config;
  }

  PrivateAnnounce announce_for(const std::string& passkey, SimTime now,
                               std::uint64_t up, std::uint64_t down,
                               std::uint32_t client_tag = 1) {
    PrivateAnnounce a;
    a.passkey = passkey;
    a.request.infohash = swarm_.infohash();
    a.request.client = Endpoint{IpAddress(0x0B000000 + client_tag), 6881};
    a.request.numwant = 50;
    a.request.now = now;
    a.uploaded_delta = up;
    a.downloaded_delta = down;
    return a;
  }

  PrivateTracker tracker_;
  Swarm swarm_;
};

TEST_F(PrivateTrackerTest, RegistrationIssuesUniquePasskeys) {
  const auto key1 = tracker_.register_user("alice");
  const auto key2 = tracker_.register_user("bob");
  ASSERT_TRUE(key1 && key2);
  EXPECT_EQ(key1->size(), 32u);
  EXPECT_NE(*key1, *key2);
  EXPECT_EQ(tracker_.account_count(), 2u);
  EXPECT_FALSE(tracker_.register_user("alice").has_value());  // duplicate
  EXPECT_FALSE(tracker_.register_user("").has_value());
}

TEST_F(PrivateTrackerTest, AuthenticatedAnnounceWorks) {
  const auto key = tracker_.register_user("alice");
  const AnnounceReply reply =
      tracker_.announce(announce_for(*key, 100, 0, 10 * kMiB));
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.complete, 1u);
  EXPECT_FALSE(reply.peers.empty());
}

TEST_F(PrivateTrackerTest, UnknownPasskeyRejected) {
  const AnnounceReply reply =
      tracker_.announce(announce_for("deadbeef", 100, 0, 0));
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.failure_reason, "unregistered passkey");
  EXPECT_EQ(tracker_.stats().denied_auth, 1u);
}

TEST_F(PrivateTrackerTest, GraceAllowanceForNewcomers) {
  const auto key = tracker_.register_user("leech");
  // Half a GiB downloaded, nothing uploaded: still under the grace budget.
  EXPECT_TRUE(tracker_.announce(announce_for(*key, 100, 0, 512 * kMiB)).ok);
  EXPECT_EQ(tracker_.stats().denied_ratio, 0u);
}

TEST_F(PrivateTrackerTest, RatioEnforcedPastGrace) {
  const auto key = tracker_.register_user("leech");
  ASSERT_TRUE(tracker_.announce(announce_for(*key, 100, 0, 900 * kMiB)).ok);
  // Crosses the grace budget with ratio 0: denied.
  const AnnounceReply denied = tracker_.announce(
      announce_for(*key, 100 + minutes(16), 0, 900 * kMiB));
  EXPECT_FALSE(denied.ok);
  EXPECT_EQ(denied.failure_reason, "share ratio too low");
  EXPECT_EQ(tracker_.stats().denied_ratio, 1u);
  EXPECT_LT(*tracker_.ratio("leech"), 0.5);
}

TEST_F(PrivateTrackerTest, SeedingRestoresService) {
  const auto key = tracker_.register_user("redeemer");
  // First hit is already past the grace budget at ratio 0: denied.
  ASSERT_FALSE(tracker_.announce(announce_for(*key, 100, 0, 2 * kGiB)).ok);
  // Upload enough to push the ratio back above the threshold.
  const AnnounceReply redeemed = tracker_.announce(
      announce_for(*key, 100 + minutes(16), 2 * kGiB, 0));
  EXPECT_TRUE(redeemed.ok);
  EXPECT_GE(*tracker_.ratio("redeemer"), 0.5);
}

TEST_F(PrivateTrackerTest, VipBypassesRatio) {
  const auto key = tracker_.register_user("whale");
  ASSERT_TRUE(tracker_.grant_vip("whale"));
  EXPECT_EQ(tracker_.is_vip("whale"), true);
  // Terrible ratio, but VIP: service continues (and is counted).
  const AnnounceReply reply =
      tracker_.announce(announce_for(*key, 100, 0, 5 * kGiB));
  EXPECT_TRUE(reply.ok);
  EXPECT_GE(tracker_.stats().vip_bypasses, 1u);
  EXPECT_EQ(tracker_.stats().denied_ratio, 0u);
}

TEST_F(PrivateTrackerTest, VipForUnknownUserFails) {
  EXPECT_FALSE(tracker_.grant_vip("ghost"));
  EXPECT_FALSE(tracker_.ratio("ghost").has_value());
  EXPECT_FALSE(tracker_.is_vip("ghost").has_value());
}

TEST_F(PrivateTrackerTest, FreshAccountHasInfiniteRatio) {
  tracker_.register_user("pristine");
  EXPECT_TRUE(std::isinf(*tracker_.ratio("pristine")));
}

TEST_F(PrivateTrackerTest, UnderlyingRateLimitStillApplies) {
  const auto key = tracker_.register_user("alice");
  ASSERT_TRUE(tracker_.announce(announce_for(*key, 100, 0, 0)).ok);
  const AnnounceReply reply = tracker_.announce(announce_for(*key, 130, 0, 0));
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.failure_reason, "slow down");
}

}  // namespace
}  // namespace btpub
