// Tracker protocol tests: announce wire format, sampling, rate limiting.
#include "tracker/tracker.hpp"

#include <gtest/gtest.h>

#include "bencode/bencode.hpp"
#include "tracker/announce.hpp"

namespace btpub {
namespace {

PeerSession session(std::uint32_t ip, SimTime arrive, SimTime depart,
                    bool seeder = false) {
  PeerSession s;
  s.endpoint = Endpoint{IpAddress(ip), 6881};
  s.arrive = arrive;
  s.depart = depart;
  if (seeder) s.complete_at = arrive;
  return s;
}

class TrackerTest : public ::testing::Test {
 protected:
  TrackerTest() : tracker_(TrackerConfig{}, Rng(5)) {
    swarm_ = Swarm(Sha1::hash("tracked"), 64, 0);
    swarm_.add_session(session(1, 0, 100000, /*seeder=*/true));
    for (std::uint32_t i = 2; i <= 300; ++i) {
      swarm_.add_session(session(i, 0, 100000));
    }
    swarm_.finalize();
    tracker_.host_swarm(swarm_);
  }

  AnnounceRequest request(std::uint32_t client_ip, SimTime now,
                          std::size_t numwant = 200) {
    AnnounceRequest r;
    r.infohash = swarm_.infohash();
    r.client = Endpoint{IpAddress(client_ip), 6881};
    r.numwant = numwant;
    r.now = now;
    return r;
  }

  Tracker tracker_;
  Swarm swarm_;
};

TEST_F(TrackerTest, AnnounceReturnsCountsAndPeers) {
  const AnnounceReply reply = tracker_.announce(request(0x0A000001, 10));
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.complete, 1u);
  EXPECT_EQ(reply.incomplete, 299u);
  EXPECT_EQ(reply.peers.size(), 200u);  // capped at max_numwant
  EXPECT_EQ(reply.interval, tracker_.enforced_gap());
}

TEST_F(TrackerTest, NumwantBelowCapHonoured) {
  const AnnounceReply reply = tracker_.announce(request(0x0A000002, 10, 50));
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.peers.size(), 50u);
}

TEST_F(TrackerTest, NumwantAboveCapClamped) {
  const AnnounceReply reply = tracker_.announce(request(0x0A000003, 10, 5000));
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.peers.size(), 200u);
}

TEST_F(TrackerTest, UnknownTorrentFails) {
  AnnounceRequest r = request(0x0A000004, 10);
  r.infohash = Sha1::hash("not hosted");
  const AnnounceReply reply = tracker_.announce(r);
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.failure_reason, "unregistered torrent");
  EXPECT_EQ(tracker_.stats().rejected_unknown, 1u);
}

TEST_F(TrackerTest, RateLimitingKicksIn) {
  const auto gap = tracker_.enforced_gap();
  ASSERT_TRUE(tracker_.announce(request(0x0A000005, 0)).ok);
  // Same client, same torrent, too soon.
  const AnnounceReply reply = tracker_.announce(request(0x0A000005, gap / 2));
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.failure_reason, "slow down");
  // After the full gap: fine again.
  EXPECT_TRUE(tracker_.announce(request(0x0A000005, gap + 1)).ok);
}

TEST_F(TrackerTest, RateLimitIsPerClient) {
  ASSERT_TRUE(tracker_.announce(request(0x0A000006, 0)).ok);
  EXPECT_TRUE(tracker_.announce(request(0x0A000007, 1)).ok);
}

TEST_F(TrackerTest, PersistentAbuseGetsBlacklisted) {
  TrackerConfig config;
  config.blacklist_after = 5;
  Tracker strict(config, Rng(6));
  strict.host_swarm(swarm_);
  const IpAddress abuser(0x0A0000FF);
  AnnounceRequest r;
  r.infohash = swarm_.infohash();
  r.client = Endpoint{abuser, 1};
  r.now = 0;
  ASSERT_TRUE(strict.announce(r).ok);
  for (int i = 0; i < 5; ++i) {
    r.now = i + 1;  // way below the gap
    EXPECT_FALSE(strict.announce(r).ok);
  }
  EXPECT_TRUE(strict.is_blacklisted(abuser));
  r.now = days(10);
  const AnnounceReply reply = strict.announce(r);
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.failure_reason, "client banned");
}

TEST_F(TrackerTest, HandleGetFullRoundTrip) {
  const std::string query = to_query_string(request(0x0A000008, 10));
  const std::string body = tracker_.handle_get(query);
  const AnnounceReply reply = decode_announce_reply(body);
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.complete, 1u);
  EXPECT_EQ(reply.peers.size(), 200u);
}

TEST_F(TrackerTest, HandleGetMalformedQuery) {
  const AnnounceReply reply = decode_announce_reply(tracker_.handle_get("garbage"));
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.failure_reason, "malformed request");
}

TEST_F(TrackerTest, ScrapeReportsCounters) {
  const std::string body = tracker_.scrape(swarm_.infohash(), 10);
  const auto root = bencode::decode(body);
  const auto& files = root.at("files").as_dict();
  ASSERT_EQ(files.size(), 1u);
  const auto& entry = files.begin()->second;
  EXPECT_EQ(entry.at("complete").as_integer(), 1);
  EXPECT_EQ(entry.at("incomplete").as_integer(), 299);
}

TEST_F(TrackerTest, ScrapeUnknownHashEmpty) {
  const std::string body = tracker_.scrape(Sha1::hash("zzz"), 10);
  const auto root = bencode::decode(body);
  EXPECT_TRUE(root.at("files").as_dict().empty());
}

TEST_F(TrackerTest, HostRequiresFinalizedSwarm) {
  Swarm raw(Sha1::hash("raw"), 8, 0);
  EXPECT_THROW(tracker_.host_swarm(raw), std::logic_error);
}

TEST(TrackerConfigTest, BadGapOrderingThrows) {
  TrackerConfig config;
  config.min_query_gap = minutes(15);
  config.max_query_gap = minutes(10);
  EXPECT_THROW(Tracker(config, Rng(1)), std::invalid_argument);
}

TEST(TrackerConfigTest, EnforcedGapWithinBounds) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Tracker tracker(TrackerConfig{}, Rng(seed));
    EXPECT_GE(tracker.enforced_gap(), minutes(10));
    EXPECT_LE(tracker.enforced_gap(), minutes(15));
  }
}

// --- announce wire helpers ---

TEST(AnnounceWire, UrlEscapeRoundTrip) {
  std::string binary;
  for (int i = 0; i < 256; ++i) binary.push_back(static_cast<char>(i));
  EXPECT_EQ(url_unescape(url_escape(binary)), binary);
}

TEST(AnnounceWire, UrlUnescapeRejectsMalformed) {
  EXPECT_THROW(url_unescape("%"), std::invalid_argument);
  EXPECT_THROW(url_unescape("%f"), std::invalid_argument);
  EXPECT_THROW(url_unescape("%zz"), std::invalid_argument);
}

TEST(AnnounceWire, QueryStringRoundTrip) {
  AnnounceRequest r;
  r.infohash = Sha1::hash("infohash");
  r.client = Endpoint{IpAddress(81, 93, 5, 7), 51413};
  r.numwant = 123;
  r.now = 98765;
  const auto parsed = parse_query_string(to_query_string(r));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->infohash, r.infohash);
  EXPECT_EQ(parsed->client, r.client);
  EXPECT_EQ(parsed->numwant, r.numwant);
  EXPECT_EQ(parsed->now, r.now);
}

TEST(AnnounceWire, QueryStringMissingFieldsRejected) {
  EXPECT_FALSE(parse_query_string("/announce?ip=1.2.3.4&port=1").has_value());
  EXPECT_FALSE(parse_query_string("no-question-mark").has_value());
  EXPECT_FALSE(
      parse_query_string("/announce?info_hash=%41&ip=1.2.3.4&port=1").has_value());
  EXPECT_FALSE(parse_query_string("/announce?info_hash=" + url_escape(std::string(20, 'x')) +
                                  "&ip=1.2.3.4&port=99999")
                   .has_value());
}

TEST(AnnounceWire, QueryStringDuplicateKeysLastWins) {
  const std::string hash_a = url_escape(std::string(20, 'a'));
  const std::string hash_b = url_escape(std::string(20, 'b'));
  const auto parsed = parse_query_string(
      "/announce?info_hash=" + hash_a + "&info_hash=" + hash_b +
      "&ip=1.2.3.4&ip=5.6.7.8&port=10&port=20&numwant=5&numwant=7");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->infohash.bytes[0], static_cast<std::uint8_t>('b'));
  EXPECT_EQ(parsed->client.ip, IpAddress(5, 6, 7, 8));
  EXPECT_EQ(parsed->client.port, 20);
  EXPECT_EQ(parsed->numwant, 7u);
}

TEST(AnnounceWire, QueryStringMalformedHashEscapesRejected) {
  // Bad hex digits, truncated escape, and an escape that decodes short.
  EXPECT_FALSE(
      parse_query_string("/announce?info_hash=%zz" + url_escape(std::string(18, 'x')) +
                         "&ip=1.2.3.4&port=1")
          .has_value());
  EXPECT_FALSE(parse_query_string("/announce?info_hash=" +
                                  url_escape(std::string(19, 'x')) +
                                  "%4&ip=1.2.3.4&port=1")
                   .has_value());
  // 21 decoded bytes: one too many for a SHA-1 digest.
  EXPECT_FALSE(parse_query_string("/announce?info_hash=" +
                                  url_escape(std::string(21, 'x')) +
                                  "&ip=1.2.3.4&port=1")
                   .has_value());
}

TEST(AnnounceWire, QueryStringOutOfRangePortRejected) {
  const std::string hash = url_escape(std::string(20, 'x'));
  EXPECT_FALSE(parse_query_string("/announce?info_hash=" + hash +
                                  "&ip=1.2.3.4&port=65536")
                   .has_value());
  EXPECT_FALSE(parse_query_string("/announce?info_hash=" + hash +
                                  "&ip=1.2.3.4&port=-1")
                   .has_value());
  EXPECT_FALSE(parse_query_string("/announce?info_hash=" + hash +
                                  "&ip=1.2.3.4&port=")
                   .has_value());
  const auto max_port = parse_query_string("/announce?info_hash=" + hash +
                                           "&ip=1.2.3.4&port=65535");
  ASSERT_TRUE(max_port.has_value());
  EXPECT_EQ(max_port->client.port, 65535);
}

TEST(AnnounceWire, QueryStringMissingTimestampDefaultsToZero) {
  // `t` carries the simulated clock in-band; a query without it is still
  // well-formed and lands at t=0 (a real tracker would use wall time).
  const auto parsed = parse_query_string(
      "/announce?info_hash=" + url_escape(std::string(20, 'x')) +
      "&ip=1.2.3.4&port=6881");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->now, 0);
  EXPECT_EQ(parsed->numwant, 200u);  // default when absent
}

TEST(AnnounceWire, QueryStringMalformedPairsRejected) {
  const std::string hash = url_escape(std::string(20, 'x'));
  // A pair without '=' poisons the whole query.
  EXPECT_FALSE(parse_query_string("/announce?info_hash=" + hash +
                                  "&ip=1.2.3.4&port=1&junk")
                   .has_value());
  // Non-numeric numwant / t are rejected rather than ignored.
  EXPECT_FALSE(parse_query_string("/announce?info_hash=" + hash +
                                  "&ip=1.2.3.4&port=1&numwant=abc")
                   .has_value());
  EXPECT_FALSE(parse_query_string("/announce?info_hash=" + hash +
                                  "&ip=1.2.3.4&port=1&t=abc")
                   .has_value());
  // Unknown keys are tolerated (real clients send peer_id, event, ...).
  EXPECT_TRUE(parse_query_string("/announce?info_hash=" + hash +
                                 "&ip=1.2.3.4&port=1&event=started")
                  .has_value());
}

TEST(AnnounceWire, ReplyEncodingRoundTrip) {
  AnnounceReply reply;
  reply.ok = true;
  reply.interval = minutes(12);
  reply.complete = 3;
  reply.incomplete = 17;
  reply.peers = {{IpAddress(1, 2, 3, 4), 6881}, {IpAddress(5, 6, 7, 8), 1234}};
  const AnnounceReply decoded = decode_announce_reply(encode_announce_reply(reply));
  EXPECT_TRUE(decoded.ok);
  EXPECT_EQ(decoded.interval, reply.interval);
  EXPECT_EQ(decoded.complete, 3u);
  EXPECT_EQ(decoded.incomplete, 17u);
  EXPECT_EQ(decoded.peers, reply.peers);
}

TEST(AnnounceWire, FailureEncodingRoundTrip) {
  AnnounceReply reply;
  reply.ok = false;
  reply.failure_reason = "slow down";
  const AnnounceReply decoded = decode_announce_reply(encode_announce_reply(reply));
  EXPECT_FALSE(decoded.ok);
  EXPECT_EQ(decoded.failure_reason, "slow down");
  EXPECT_TRUE(decoded.peers.empty());
}

}  // namespace
}  // namespace btpub
