// Bencode codec tests: round trips, canonical-form enforcement, and the
// malformed inputs a crawler must survive.
#include "bencode/bencode.hpp"

#include <gtest/gtest.h>

namespace btpub::bencode {
namespace {

TEST(Encode, Integers) {
  EXPECT_EQ(encode(Value(std::int64_t{0})), "i0e");
  EXPECT_EQ(encode(Value(std::int64_t{42})), "i42e");
  EXPECT_EQ(encode(Value(std::int64_t{-7})), "i-7e");
}

TEST(Encode, Strings) {
  EXPECT_EQ(encode(Value("spam")), "4:spam");
  EXPECT_EQ(encode(Value("")), "0:");
  std::string binary = "a";
  binary.push_back('\0');
  binary += "b";
  EXPECT_EQ(encode(Value(binary)), std::string("3:a\0b", 5));
}

TEST(Encode, ListsAndDicts) {
  List list;
  list.emplace_back(std::int64_t{1});
  list.emplace_back("two");
  EXPECT_EQ(encode(Value(std::move(list))), "li1e3:twoe");

  Dict dict;
  dict.emplace("b", std::int64_t{2});
  dict.emplace("a", std::int64_t{1});
  // Keys serialise in sorted order regardless of insertion order.
  EXPECT_EQ(encode(Value(std::move(dict))), "d1:ai1e1:bi2ee");
}

TEST(Decode, RoundTripNested) {
  Dict info;
  info.emplace("name", "file.avi");
  info.emplace("piece length", std::int64_t{262144});
  List files;
  Dict f1;
  f1.emplace("length", std::int64_t{1234});
  files.emplace_back(std::move(f1));
  info.emplace("files", std::move(files));
  const Value original{std::move(info)};
  const Value decoded = decode(encode(original));
  EXPECT_EQ(decoded, original);
  EXPECT_EQ(decoded.at("name").as_string(), "file.avi");
  EXPECT_EQ(decoded.at("piece length").as_integer(), 262144);
}

class RoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTrip, DecodeEncodeIsIdentity) {
  const std::string text = GetParam();
  EXPECT_EQ(encode(decode(text)), text);
}

INSTANTIATE_TEST_SUITE_P(CanonicalForms, RoundTrip,
                         ::testing::Values("i0e", "i-42e", "0:", "4:spam", "le",
                                           "de", "li1ei2ee", "d1:a0:e",
                                           "d4:infod4:name3:abcee",
                                           "ld1:xi1eeli9eee"));

TEST(Decode, RejectsTrailingGarbage) {
  EXPECT_THROW(decode("i1e i2e"), Error);
  EXPECT_THROW(decode("4:spamX"), Error);
}

TEST(Decode, RejectsTruncation) {
  EXPECT_THROW(decode("i42"), Error);
  EXPECT_THROW(decode("7:spam"), Error);
  EXPECT_THROW(decode("li1e"), Error);
  EXPECT_THROW(decode("d1:a"), Error);
  EXPECT_THROW(decode(""), Error);
}

TEST(Decode, RejectsNonCanonicalIntegers) {
  EXPECT_THROW(decode("i-0e"), Error);
  EXPECT_THROW(decode("i007e"), Error);
  EXPECT_THROW(decode("i-01e"), Error);
  EXPECT_THROW(decode("ie"), Error);
  EXPECT_THROW(decode("i-e"), Error);
  EXPECT_THROW(decode("i1.5e"), Error);
}

TEST(Decode, RejectsUnsortedOrDuplicateDictKeys) {
  EXPECT_THROW(decode("d1:bi1e1:ai2ee"), Error);   // descending
  EXPECT_THROW(decode("d1:ai1e1:ai2ee"), Error);   // duplicate
}

TEST(Decode, RejectsDepthBomb) {
  std::string bomb;
  for (int i = 0; i < 200; ++i) bomb += "l";
  for (int i = 0; i < 200; ++i) bomb += "e";
  EXPECT_THROW(decode(bomb), Error);
}

TEST(Decode, IntegerOverflowRejected) {
  EXPECT_THROW(decode("i99999999999999999999999999e"), Error);
}

TEST(DecodePrefix, AdvancesPosition) {
  const std::string two = "i1e4:spam";
  std::size_t pos = 0;
  const Value first = decode_prefix(two, pos);
  EXPECT_EQ(first.as_integer(), 1);
  EXPECT_EQ(pos, 3u);
  const Value second = decode_prefix(two, pos);
  EXPECT_EQ(second.as_string(), "spam");
  EXPECT_EQ(pos, two.size());
}

TEST(Accessors, TypeMismatchThrows) {
  const Value v{std::int64_t{1}};
  EXPECT_THROW(v.as_string(), Error);
  EXPECT_THROW(v.as_list(), Error);
  EXPECT_THROW(v.as_dict(), Error);
  EXPECT_EQ(v.as_integer(), 1);
  const Value s{"x"};
  EXPECT_THROW(s.as_integer(), Error);
}

TEST(Accessors, FindOnDict) {
  Dict d;
  d.emplace("num", std::int64_t{9});
  d.emplace("str", "v");
  const Value v{std::move(d)};
  EXPECT_NE(v.find("num"), nullptr);
  EXPECT_EQ(v.find("absent"), nullptr);
  EXPECT_EQ(v.find_integer("num"), 9);
  EXPECT_EQ(v.find_integer("str"), std::nullopt);  // wrong type
  EXPECT_EQ(v.find_string("str"), "v");
  EXPECT_EQ(v.find_string("num"), std::nullopt);
  EXPECT_THROW(v.at("absent"), Error);
}

TEST(Accessors, FindOnNonDictIsNull) {
  const Value v{std::int64_t{3}};
  EXPECT_EQ(v.find("x"), nullptr);
}

TEST(Equality, DeepComparison) {
  EXPECT_EQ(decode("li1ei2ee"), decode("li1ei2ee"));
  EXPECT_FALSE(decode("li1ei2ee") == decode("li1ei3ee"));
  EXPECT_FALSE(decode("i1e") == decode("1:1"));
}

}  // namespace
}  // namespace btpub::bencode
