// Portal tests: indexing, RSS, time-aware moderation, user pages.
#include "portal/portal.hpp"

#include <gtest/gtest.h>

namespace btpub {
namespace {

PublishRequest make_request(const std::string& user, const std::string& title,
                            PayloadKind payload = PayloadKind::Genuine) {
  PublishRequest r;
  r.title = title;
  r.category = ContentCategory::Movies;
  r.username = user;
  r.textbox = "Visit http://www.example.com/ for more";
  r.torrent_bytes = "d4:infod4:name1:xee";  // opaque to the portal
  r.infohash = Sha1::hash(title);
  r.size_bytes = 1000;
  r.payload = payload;
  return r;
}

TEST(Portal, PublishAssignsDenseIds) {
  Portal portal("test");
  EXPECT_EQ(portal.newest_id(), kInvalidTorrent);
  const TorrentId a = portal.publish(make_request("u1", "A"), 100);
  const TorrentId b = portal.publish(make_request("u2", "B"), 200);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(portal.newest_id(), b);
  EXPECT_EQ(portal.listing_count(), 2u);
}

TEST(Portal, PublishRejectsEmptyUsernameAndTimeTravel) {
  Portal portal("test");
  EXPECT_THROW(portal.publish(make_request("", "A"), 10), std::invalid_argument);
  portal.publish(make_request("u", "A"), 100);
  EXPECT_THROW(portal.publish(make_request("u", "B"), 50), std::invalid_argument);
}

TEST(Portal, PageVisibilityRespectsTime) {
  Portal portal("test");
  const TorrentId id = portal.publish(make_request("u1", "A"), 100);
  EXPECT_FALSE(portal.page(id, 99).has_value());  // not yet published
  const auto page = portal.page(id, 100);
  ASSERT_TRUE(page.has_value());
  EXPECT_EQ(page->title, "A");
  EXPECT_EQ(page->username, "u1");
  EXPECT_FALSE(page->removed);
  EXPECT_FALSE(portal.page(999, 1000).has_value());  // unknown id
}

TEST(Portal, FetchTorrentAndPayload) {
  Portal portal("test");
  const TorrentId id =
      portal.publish(make_request("u1", "A", PayloadKind::FakeMalware), 100);
  EXPECT_EQ(portal.fetch_torrent(id, 100), "d4:infod4:name1:xee");
  EXPECT_EQ(portal.download_payload(id, 100), PayloadKind::FakeMalware);
  EXPECT_FALSE(portal.fetch_torrent(id, 99).has_value());
}

TEST(Portal, ModerationIsInvisibleBeforeItsTime) {
  Portal portal("test");
  const TorrentId id = portal.publish(make_request("baduser", "Fake"), 100);
  portal.moderate_remove(id, 500);
  // Before removal: fully visible, user in good standing.
  EXPECT_FALSE(portal.page(id, 499)->removed);
  EXPECT_TRUE(portal.fetch_torrent(id, 499).has_value());
  EXPECT_FALSE(portal.is_banned("baduser", 499));
  // After removal: tombstone page, fetches fail, account banned.
  const auto page = portal.page(id, 500);
  ASSERT_TRUE(page.has_value());
  EXPECT_TRUE(page->removed);
  EXPECT_TRUE(page->textbox.empty());
  EXPECT_FALSE(portal.fetch_torrent(id, 500).has_value());
  EXPECT_FALSE(portal.download_payload(id, 500).has_value());
  EXPECT_TRUE(portal.is_banned("baduser", 500));
  EXPECT_EQ(portal.removed_count(499), 0u);
  EXPECT_EQ(portal.removed_count(500), 1u);
}

TEST(Portal, EarlierRemovalWins) {
  Portal portal("test");
  const TorrentId id = portal.publish(make_request("u", "A"), 100);
  portal.moderate_remove(id, 900);
  portal.moderate_remove(id, 300);  // earlier report wins
  EXPECT_TRUE(portal.page(id, 300)->removed);
  portal.moderate_remove(id, 600);  // later report is a no-op
  EXPECT_TRUE(portal.page(id, 300)->removed);
}

TEST(Portal, RssReturnsOnlyNewVisibleItems) {
  Portal portal("test");
  const TorrentId a = portal.publish(make_request("u1", "A"), 100);
  const TorrentId b = portal.publish(make_request("u2", "B"), 200);
  portal.publish(make_request("u3", "C"), 300);

  // Reading at t=250 starting from scratch: A and B only.
  auto items = portal.rss_since(kInvalidTorrent, 250);
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].id, a);
  EXPECT_EQ(items[1].id, b);
  EXPECT_EQ(items[1].username, "u2");

  // Incremental read after B at t=400 sees only C.
  items = portal.rss_since(b, 400);
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].title, "C");
}

TEST(Portal, RssSkipsRemovedItems) {
  Portal portal("test");
  const TorrentId a = portal.publish(make_request("u1", "A"), 100);
  portal.publish(make_request("u2", "B"), 200);
  portal.moderate_remove(a, 250);
  const auto items = portal.rss_since(kInvalidTorrent, 300);
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].title, "B");
}

TEST(Portal, RssHonoursLimit) {
  Portal portal("test");
  for (int i = 0; i < 10; ++i) {
    portal.publish(make_request("u", "T" + std::to_string(i)), 100 + i);
  }
  EXPECT_EQ(portal.rss_since(kInvalidTorrent, 1000, 4).size(), 4u);
}

TEST(Portal, UserPageAccumulatesHistory) {
  Portal portal("test");
  portal.record_historical_publish("vet", -5000);
  portal.record_historical_publish("vet", -100);
  portal.publish(make_request("vet", "New"), 200);
  const UserPage page = portal.user_page("vet", 300);
  ASSERT_EQ(page.publish_times.size(), 3u);
  EXPECT_EQ(page.publish_times.front(), -5000);
  EXPECT_EQ(page.publish_times.back(), 200);
  EXPECT_FALSE(page.banned);
}

TEST(Portal, UserPageIsTimeFiltered) {
  Portal portal("test");
  portal.publish(make_request("u", "A"), 100);
  portal.publish(make_request("u", "B"), 500);
  EXPECT_EQ(portal.user_page("u", 300).publish_times.size(), 1u);
  EXPECT_EQ(portal.user_page("u", 500).publish_times.size(), 2u);
}

TEST(Portal, UnknownUserPageIsEmpty) {
  Portal portal("test");
  const UserPage page = portal.user_page("ghost", 100);
  EXPECT_TRUE(page.publish_times.empty());
  EXPECT_FALSE(page.banned);
}

TEST(Portal, AllUsernamesSorted) {
  Portal portal("test");
  portal.publish(make_request("zeta", "A"), 1);
  portal.publish(make_request("alpha", "B"), 2);
  const auto names = portal.all_usernames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "zeta");
}

}  // namespace
}  // namespace btpub
