// Tests for the deterministic RNG and its distributions.
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace btpub {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, NearbySeedsAreDecorrelated) {
  // SplitMix64 seeding must break up seed adjacency.
  Rng a(100), b(101);
  double matches = 0;
  for (int i = 0; i < 1000; ++i) {
    if ((a.next() & 0xff) == (b.next() & 0xff)) ++matches;
  }
  EXPECT_NEAR(matches / 1000.0, 1.0 / 256.0, 0.02);
}

TEST(Rng, ForkIsIndependentOfParentContinuation) {
  Rng parent(7);
  Rng child = parent.fork();
  const auto child_first = child.next();
  // Re-derive: same parent seed gives the same child stream regardless of
  // what the parent does afterwards.
  Rng parent2(7);
  Rng child2 = parent2.fork();
  parent2.next();
  parent2.next();
  EXPECT_EQ(child_first, child2.next());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanAndRange) {
  Rng rng(6);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += rng.uniform(10.0, 20.0);
  EXPECT_NEAR(sum / 20000.0, 15.0, 0.1);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(8);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng rng(10);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-5, -1);
    ASSERT_GE(v, -5);
    ASSERT_LE(v, -1);
  }
}

TEST(Rng, ChanceEdges) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-1.0));
    EXPECT_TRUE(rng.chance(2.0));
  }
}

TEST(Rng, ChanceFrequency) {
  Rng rng(12);
  int hits = 0;
  for (int i = 0; i < 50000; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(hits / 50000.0, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0, sum2 = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, NormalAffine) {
  Rng rng(14);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(100.0, 5.0);
  EXPECT_NEAR(sum / n, 100.0, 0.1);
}

TEST(Rng, LognormalMedian) {
  Rng rng(15);
  std::vector<double> draws;
  for (int i = 0; i < 20001; ++i) draws.push_back(rng.lognormal_median(50.0, 1.0));
  std::nth_element(draws.begin(), draws.begin() + 10000, draws.end());
  EXPECT_NEAR(draws[10000], 50.0, 3.0);
}

TEST(Rng, ExponentialMean) {
  Rng rng(16);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(7.0);
  EXPECT_NEAR(sum / n, 7.0, 0.15);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng(17);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_GE(rng.pareto(3.0, 2.0), 3.0);
  }
}

TEST(Rng, ZipfRankRange) {
  Rng rng(18);
  for (int i = 0; i < 2000; ++i) {
    const std::size_t rank = rng.zipf(10, 1.0);
    ASSERT_GE(rank, 1u);
    ASSERT_LE(rank, 10u);
  }
}

TEST(Rng, ZipfMonotoneProbabilities) {
  Rng rng(19);
  std::vector<int> counts(11, 0);
  for (int i = 0; i < 30000; ++i) ++counts[rng.zipf(10, 1.2)];
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[2], counts[5]);
  EXPECT_GT(counts[5], counts[10]);
}

TEST(Rng, IndexWithinBounds) {
  Rng rng(20);
  for (int i = 0; i < 1000; ++i) ASSERT_LT(rng.index(17), 17u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(21);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SampleIndicesDistinct) {
  Rng rng(22);
  for (int trial = 0; trial < 50; ++trial) {
    const auto sample = rng.sample_indices(100, 10);
    ASSERT_EQ(sample.size(), 10u);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    ASSERT_EQ(unique.size(), 10u);
    for (std::size_t idx : sample) ASSERT_LT(idx, 100u);
  }
}

TEST(Rng, SampleIndicesAllWhenKTooLarge) {
  Rng rng(23);
  const auto sample = rng.sample_indices(5, 50);
  EXPECT_EQ(sample.size(), 5u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(Rng, SampleIndicesUniformCoverage) {
  Rng rng(24);
  std::vector<int> counts(20, 0);
  for (int trial = 0; trial < 4000; ++trial) {
    for (std::size_t idx : rng.sample_indices(20, 5)) ++counts[idx];
  }
  // Each index expected 4000 * 5/20 = 1000 times.
  for (int c : counts) EXPECT_NEAR(c, 1000, 120);
}

TEST(Rng, WeightedIndexProportions) {
  Rng rng(25);
  const std::vector<double> weights{1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 30000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_NEAR(counts[0] / 30000.0, 0.1, 0.01);
  EXPECT_NEAR(counts[1] / 30000.0, 0.3, 0.015);
  EXPECT_NEAR(counts[2] / 30000.0, 0.6, 0.015);
}

TEST(Rng, WeightedIndexIgnoresNegativeWeights) {
  Rng rng(26);
  const std::vector<double> weights{-5.0, 0.0, 2.0};
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(rng.weighted_index(weights), 2u);
}

class ZipfSamplerTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSamplerTest, MatchesAnalyticMass) {
  const double s = GetParam();
  ZipfSampler sampler(50, s);
  Rng rng(27);
  std::vector<double> counts(51, 0.0);
  const int n = 60000;
  for (int i = 0; i < n; ++i) ++counts[sampler.sample(rng)];
  double h = 0.0;
  for (int k = 1; k <= 50; ++k) h += 1.0 / std::pow(k, s);
  for (int k : {1, 2, 5, 10}) {
    const double expected = (1.0 / std::pow(k, s)) / h;
    EXPECT_NEAR(counts[k] / n, expected, 0.01) << "rank " << k << " s=" << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfSamplerTest,
                         ::testing::Values(0.8, 1.0, 1.5, 2.0));

class RngSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedTest, UniformIntUnbiasedAcrossSeeds) {
  Rng rng(GetParam());
  std::vector<int> counts(6, 0);
  for (int i = 0; i < 60000; ++i) ++counts[rng.uniform_int(0, 5)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 400);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedTest,
                         ::testing::Values(1u, 42u, 0xdeadbeefu, ~0ull));

}  // namespace
}  // namespace btpub
