// The simulated DHT overlay: joins, iterative lookups, announce/get_peers
// round trips, O(log n) convergence, departure handling, determinism.
#include <gtest/gtest.h>

#include <cmath>

#include "dht/overlay.hpp"

namespace btpub::dht {
namespace {

Endpoint peer_at(std::uint32_t i, std::uint16_t port = 6881) {
  return Endpoint{IpAddress(0x0A000000u + i), port};
}

TEST(DhtOverlayTest, JoinFillsRoutingTables) {
  DhtOverlay overlay(1);
  SimTime now = 0;
  for (std::uint32_t i = 0; i < 30; ++i) overlay.add_node(peer_at(i), ++now);
  EXPECT_EQ(overlay.node_count(), 31u);  // 30 + the router
  // Every node learnt someone, and the router knows most of the overlay.
  for (std::uint32_t i = 0; i < 30; ++i) {
    EXPECT_GT(overlay.node_at(peer_at(i))->table().size(), 0u) << i;
  }
  EXPECT_GE(overlay.node_at(overlay.router())->table().size(), 8u);
}

TEST(DhtOverlayTest, AnnounceThenLookupFindsThePeer) {
  DhtOverlay overlay(2);
  SimTime now = 0;
  for (std::uint32_t i = 0; i < 40; ++i) overlay.add_node(peer_at(i), ++now);
  const Sha1Digest infohash = Sha1::hash("announce me");
  overlay.announce_peer(infohash, peer_at(7), ++now);

  LookupStats stats;
  const auto found = overlay.get_peers(infohash, {IpAddress(10, 88, 0, 1), 6881},
                                       ++now, &stats, {}, /*read_only=*/true);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0], peer_at(7));
  EXPECT_GT(stats.messages, 0u);
  EXPECT_EQ(stats.peers_found, 1u);
}

TEST(DhtOverlayTest, LookupForUnknownInfohashFindsNothing) {
  DhtOverlay overlay(3);
  SimTime now = 0;
  for (std::uint32_t i = 0; i < 20; ++i) overlay.add_node(peer_at(i), ++now);
  const auto found = overlay.get_peers(Sha1::hash("never announced"),
                                       {IpAddress(10, 88, 0, 1), 6881}, ++now,
                                       nullptr, {}, true);
  EXPECT_TRUE(found.empty());
}

TEST(DhtOverlayTest, DepartedNodesTimeOutAndLookupsRouteAround) {
  DhtOverlay overlay(4);
  SimTime now = 0;
  for (std::uint32_t i = 0; i < 40; ++i) overlay.add_node(peer_at(i), ++now);
  const Sha1Digest infohash = Sha1::hash("churny");
  overlay.announce_peer(infohash, peer_at(5), ++now);
  // Half the population departs; their table entries elsewhere go stale.
  for (std::uint32_t i = 20; i < 40; ++i) overlay.remove_node(peer_at(i));

  LookupStats stats;
  const auto found = overlay.get_peers(infohash, {IpAddress(10, 88, 0, 1), 6881},
                                       ++now, &stats, {}, true);
  // The lookup sees timeouts but still converges on the stored peer,
  // because announce replicated the mapping across the k closest nodes.
  EXPECT_FALSE(found.empty());
  EXPECT_EQ(found[0], peer_at(5));
}

TEST(DhtOverlayTest, ReadOnlyVantageNeverEntersRoutingTables) {
  DhtOverlay overlay(5);
  SimTime now = 0;
  for (std::uint32_t i = 0; i < 20; ++i) overlay.add_node(peer_at(i), ++now);
  const Endpoint vantage{IpAddress(10, 88, 0, 1), 6881};
  const NodeId vantage_id = NodeId::for_endpoint(5, vantage);
  for (int walk = 0; walk < 5; ++walk) {
    overlay.get_peers(Sha1::hash("probe" + std::to_string(walk)), vantage,
                      ++now, nullptr, {}, /*read_only=*/true);
  }
  for (std::uint32_t i = 0; i < 20; ++i) {
    EXPECT_FALSE(overlay.node_at(peer_at(i))->table().contains(vantage_id));
  }
  EXPECT_FALSE(
      overlay.node_at(overlay.router())->table().contains(vantage_id));
}

TEST(DhtOverlayTest, BootstrapHintsReplaceTheRouter) {
  DhtOverlay overlay(6);
  SimTime now = 0;
  for (std::uint32_t i = 0; i < 30; ++i) overlay.add_node(peer_at(i), ++now);
  const Sha1Digest infohash = Sha1::hash("hinted lookup");
  overlay.announce_peer(infohash, peer_at(3), ++now);
  // Bootstrapping from an ordinary node (as from a magnet x.pe hint)
  // converges without ever touching the router.
  const Endpoint hints[] = {peer_at(11)};
  LookupStats stats;
  const auto found = overlay.get_peers(infohash, {IpAddress(10, 88, 0, 1), 6881},
                                       ++now, &stats, hints, true);
  ASSERT_FALSE(found.empty());
  EXPECT_EQ(found[0], peer_at(3));
}

TEST(DhtOverlayTest, ThousandNodeLookupConvergesInLogNHops) {
  DhtOverlay overlay(7);
  constexpr std::size_t kNodes = 1000;
  SimTime now = 0;
  for (std::uint32_t i = 0; i < kNodes; ++i) overlay.add_node(peer_at(i), ++now);

  // ceil(log2(1000)) = 10: Kademlia halves the distance per hop, so no
  // lookup may take more rounds than the id-space depth of the overlay.
  const std::uint32_t bound = static_cast<std::uint32_t>(
      std::ceil(std::log2(static_cast<double>(kNodes))));
  const Endpoint vantage{IpAddress(10, 88, 0, 1), 6881};
  std::uint32_t worst = 0;
  for (int t = 0; t < 50; ++t) {
    const Sha1Digest infohash = Sha1::hash("target" + std::to_string(t));
    overlay.announce_peer(infohash, peer_at(std::uint32_t(t)), ++now);
    LookupStats stats;
    const auto found =
        overlay.get_peers(infohash, vantage, ++now, &stats, {}, true);
    ASSERT_FALSE(found.empty()) << t;
    EXPECT_LE(stats.hops, bound) << "lookup " << t;
    worst = std::max(worst, stats.hops);
  }
  // Sanity: the walk is genuinely iterative, not a single-hop shortcut.
  EXPECT_GT(worst, 1u);
}

TEST(DhtOverlayTest, IdenticallySeededOverlaysAnswerIdentically) {
  const auto build = [](DhtOverlay& overlay) {
    SimTime now = 0;
    for (std::uint32_t i = 0; i < 60; ++i) overlay.add_node(peer_at(i), ++now);
    for (int t = 0; t < 8; ++t) {
      overlay.announce_peer(Sha1::hash("det" + std::to_string(t)),
                            peer_at(std::uint32_t(3 * t)), ++now);
    }
    return now;
  };
  DhtOverlay a(42), b(42);
  const SimTime now_a = build(a);
  const SimTime now_b = build(b);
  ASSERT_EQ(now_a, now_b);
  const Endpoint vantage{IpAddress(10, 88, 0, 1), 6881};
  for (int t = 0; t < 8; ++t) {
    const Sha1Digest infohash = Sha1::hash("det" + std::to_string(t));
    LookupStats sa, sb;
    const auto ra = a.get_peers(infohash, vantage, now_a + 1, &sa, {}, true);
    const auto rb = b.get_peers(infohash, vantage, now_b + 1, &sb, {}, true);
    EXPECT_EQ(ra, rb) << t;
    EXPECT_EQ(sa.hops, sb.hops) << t;
    EXPECT_EQ(sa.messages, sb.messages) << t;
  }
  EXPECT_EQ(a.datagrams(), b.datagrams());
}

TEST(DhtOverlayTest, RouterNeverDeparts) {
  DhtOverlay overlay(8);
  overlay.remove_node(overlay.router());
  EXPECT_TRUE(overlay.is_node(overlay.router()));
}

}  // namespace
}  // namespace btpub::dht
