// Property & differential tests: randomised inputs checked against
// brute-force oracles and robustness invariants.
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/session.hpp"
#include "bencode/bencode.hpp"
#include "swarm/swarm.hpp"

namespace btpub {
namespace {

// ---- Swarm sweep vs brute force -------------------------------------------

class SwarmDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SwarmDifferential, SweepMatchesBruteForce) {
  Rng rng(GetParam());
  Swarm swarm(Sha1::hash("prop" + std::to_string(GetParam())), 64, 0);
  std::vector<PeerSession> sessions;
  const std::size_t n = 200 + rng.index(200);
  for (std::size_t i = 0; i < n; ++i) {
    PeerSession s;
    s.endpoint = Endpoint{IpAddress(0x0A000000u + static_cast<std::uint32_t>(i)),
                          6881};
    s.arrive = rng.uniform_int(0, hours(100));
    s.depart = s.arrive + rng.uniform_int(1, hours(30));
    if (rng.chance(0.6)) {
      // Completion anywhere around the session (before/inside/after).
      s.complete_at = s.arrive + rng.uniform_int(-hours(1), hours(40));
    }
    sessions.push_back(s);
    swarm.add_session(s);
  }
  swarm.finalize();

  // Random query times, including backwards jumps (the rewind slow path).
  for (int q = 0; q < 60; ++q) {
    const SimTime t = rng.uniform_int(-hours(1), hours(140));
    std::uint32_t seeders = 0, leechers = 0;
    for (const PeerSession& s : sessions) {
      if (s.depart <= s.arrive) continue;  // dropped by add_session
      if (!s.present_at(t)) continue;
      if (s.seeder_at(t)) {
        ++seeders;
      } else {
        ++leechers;
      }
    }
    const SwarmCounts counts = swarm.counts_at(t);
    ASSERT_EQ(counts.seeders, seeders) << "t=" << t;
    ASSERT_EQ(counts.leechers, leechers) << "t=" << t;
    // peers_at must agree with the count and contain only present peers.
    const auto present = swarm.peers_at(t);
    ASSERT_EQ(present.size(), seeders + leechers);
    for (const PeerSession* p : present) ASSERT_TRUE(p->present_at(t));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SwarmDifferential,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ---- union_length vs brute force -------------------------------------------

class UnionDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UnionDifferential, MatchesBitmapOracle) {
  Rng rng(GetParam());
  std::vector<Interval> intervals;
  const std::size_t n = 1 + rng.index(20);
  for (std::size_t i = 0; i < n; ++i) {
    const SimTime start = rng.uniform_int(0, 500);
    intervals.push_back(Interval{start, start + rng.uniform_int(1, 100)});
  }
  // Brute force: mark covered seconds.
  std::vector<bool> covered(700, false);
  for (const Interval& iv : intervals) {
    for (SimTime t = iv.start; t < iv.end; ++t) covered[static_cast<std::size_t>(t)] = true;
  }
  const auto expected = static_cast<SimDuration>(
      std::count(covered.begin(), covered.end(), true));
  EXPECT_EQ(union_length(intervals), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnionDifferential,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u, 16u));

// ---- Session reconstruction invariants --------------------------------------

class SessionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SessionProperty, SessionsCoverEverySightingExactlyOnce) {
  Rng rng(GetParam());
  std::vector<SimTime> sightings;
  SimTime t = 0;
  const std::size_t n = 1 + rng.index(300);
  for (std::size_t i = 0; i < n; ++i) {
    t += rng.uniform_int(minutes(1), hours(9));
    sightings.push_back(t);
  }
  const SimDuration gap = hours(4);
  const auto sessions = reconstruct_sessions(sightings, gap, minutes(15));
  ASSERT_FALSE(sessions.empty());
  // Invariants: sessions are ordered, non-overlapping, separated by > gap,
  // and every sighting falls into exactly one session.
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    EXPECT_LT(sessions[i].start, sessions[i].end);
    if (i > 0) {
      EXPECT_GT(sessions[i].start, sessions[i - 1].end + gap - minutes(15) - 1);
    }
  }
  for (const SimTime s : sightings) {
    int containing = 0;
    for (const Interval& session : sessions) {
      if (session.contains(s)) ++containing;
    }
    EXPECT_EQ(containing, 1) << "sighting " << s;
  }
  // Total session time never exceeds span + one trailing query gap.
  SimDuration total = 0;
  for (const Interval& session : sessions) total += session.length();
  EXPECT_LE(total, sightings.back() - sightings.front() + minutes(15));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SessionProperty,
                         ::testing::Values(21u, 22u, 23u, 24u));

// ---- Bencode robustness ------------------------------------------------------

bencode::Value random_value(Rng& rng, int depth) {
  const double u = rng.uniform();
  if (depth >= 4 || u < 0.35) {
    return bencode::Value(rng.uniform_int(-1000000, 1000000));
  }
  if (u < 0.6) {
    std::string s;
    const std::size_t n = rng.index(20);
    for (std::size_t i = 0; i < n; ++i) {
      s.push_back(static_cast<char>(rng.uniform_int(0, 255)));
    }
    return bencode::Value(std::move(s));
  }
  if (u < 0.8) {
    bencode::List list;
    const std::size_t n = rng.index(5);
    for (std::size_t i = 0; i < n; ++i) list.push_back(random_value(rng, depth + 1));
    return bencode::Value(std::move(list));
  }
  bencode::Dict dict;
  const std::size_t n = rng.index(5);
  for (std::size_t i = 0; i < n; ++i) {
    dict.emplace("k" + std::to_string(rng.uniform_int(0, 1000)),
                 random_value(rng, depth + 1));
  }
  return bencode::Value(std::move(dict));
}

class BencodeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BencodeProperty, RandomTreesRoundTrip) {
  Rng rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    const bencode::Value original = random_value(rng, 0);
    const std::string encoded = bencode::encode(original);
    const bencode::Value decoded = bencode::decode(encoded);
    ASSERT_EQ(decoded, original);
    ASSERT_EQ(bencode::encode(decoded), encoded);  // canonical fixed point
  }
}

TEST_P(BencodeProperty, RandomBytesNeverCrash) {
  Rng rng(GetParam() + 1000);
  for (int i = 0; i < 500; ++i) {
    std::string junk;
    const std::size_t n = rng.index(40);
    for (std::size_t k = 0; k < n; ++k) {
      // Bias toward structural bytes to reach deep parser paths.
      static constexpr char kAlphabet[] = "ilde0123456789:-x";
      junk.push_back(kAlphabet[rng.index(sizeof(kAlphabet) - 1)]);
    }
    try {
      const bencode::Value v = bencode::decode(junk);
      // If it parsed, it must re-encode to the same bytes (canonical form).
      EXPECT_EQ(bencode::encode(v), junk);
    } catch (const bencode::Error&) {
      // Expected for most inputs.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BencodeProperty,
                         ::testing::Values(31u, 32u, 33u));

// ---- Tracker sampling uniformity ---------------------------------------------

TEST(SamplingProperty, NoPositionBias) {
  // Peers added in a fixed order must be sampled uniformly regardless of
  // their position in the internal present-vector.
  Swarm swarm(Sha1::hash("bias"), 16, 0);
  for (std::uint32_t i = 0; i < 100; ++i) {
    PeerSession s;
    s.endpoint = Endpoint{IpAddress(0x0C000000u + i), 1};
    s.arrive = 0;
    s.depart = hours(10);
    swarm.add_session(s);
  }
  swarm.finalize();
  Rng rng(9);
  std::vector<int> hits(100, 0);
  const int rounds = 3000;
  for (int round = 0; round < rounds; ++round) {
    for (const PeerSession* p : swarm.sample_peers(1, 20, rng)) {
      ++hits[p->endpoint.ip.value() - 0x0C000000u];
    }
  }
  // Expected 600 hits each; flag any peer outside a generous band.
  for (int h : hits) {
    EXPECT_GT(h, 450);
    EXPECT_LT(h, 770);
  }
}

}  // namespace
}  // namespace btpub
