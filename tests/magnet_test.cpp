// Magnet URI (BEP 9) rendering and parsing.
#include "torrent/magnet.hpp"

#include <gtest/gtest.h>

namespace btpub {
namespace {

TEST(Magnet, RoundTrip) {
  MagnetLink link;
  link.infohash = Sha1::hash("some torrent");
  link.display_name = "Dark Horizon (2010) [DVDRip]";
  link.trackers = {"http://tracker.btpub.example/announce",
                   "udp://tracker.btpub.example:6969"};
  const std::string uri = link.to_uri();
  const auto parsed = MagnetLink::parse(uri);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->infohash, link.infohash);
  EXPECT_EQ(parsed->display_name, link.display_name);
  EXPECT_EQ(parsed->trackers, link.trackers);
}

TEST(Magnet, MinimalForm) {
  MagnetLink link;
  link.infohash = Sha1::hash("x");
  const std::string uri = link.to_uri();
  EXPECT_EQ(uri, "magnet:?xt=urn:btih:" + link.infohash.hex());
  const auto parsed = MagnetLink::parse(uri);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->display_name.empty());
  EXPECT_TRUE(parsed->trackers.empty());
}

TEST(Magnet, EscapesSpecialCharacters) {
  MagnetLink link;
  link.infohash = Sha1::hash("y");
  link.display_name = "A & B = C?";
  const std::string uri = link.to_uri();
  EXPECT_EQ(uri.find("A & B"), std::string::npos);  // must be escaped
  const auto parsed = MagnetLink::parse(uri);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->display_name, "A & B = C?");
}

TEST(Magnet, IgnoresUnknownParameters) {
  const std::string uri = "magnet:?xt=urn:btih:" + Sha1::hash("z").hex() +
                          "&xl=12345&ws=http%3A%2F%2Fmirror.example%2F";
  const auto parsed = MagnetLink::parse(uri);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->infohash, Sha1::hash("z"));
}

TEST(Magnet, PeerHintsRoundTrip) {
  MagnetLink link;
  link.infohash = Sha1::hash("hinted");
  link.peers = {{IpAddress(83, 45, 1, 9), 6881},
                {IpAddress(10, 99, 0, 1), 51413}};
  const std::string uri = link.to_uri();
  // ':' is not an unreserved character, so the hint is escaped on the wire.
  EXPECT_NE(uri.find("x.pe=83.45.1.9%3A6881"), std::string::npos);
  const auto parsed = MagnetLink::parse(uri);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->peers, link.peers);
}

TEST(Magnet, PeerHintParsesUnescapedColonToo) {
  const std::string uri = "magnet:?xt=urn:btih:" + Sha1::hash("h").hex() +
                          "&x.pe=192.168.1.2:6881";
  const auto parsed = MagnetLink::parse(uri);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->peers.size(), 1u);
  EXPECT_EQ(parsed->peers[0], (Endpoint{IpAddress(192, 168, 1, 2), 6881}));
}

class BadPeerHint : public ::testing::TestWithParam<const char*> {};

TEST_P(BadPeerHint, Rejected) {
  const std::string uri = "magnet:?xt=urn:btih:" + Sha1::hash("h").hex() +
                          "&x.pe=" + GetParam();
  EXPECT_FALSE(MagnetLink::parse(uri).has_value()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, BadPeerHint,
    ::testing::Values("1.2.3.4",            // no port
                      "1.2.3.4:",           // empty port
                      ":6881",              // no host
                      "1.2.3.4:0",          // port zero
                      "1.2.3.4:65536",      // port overflow
                      "1.2.3.4:68x1",       // non-digit port
                      "not-an-ip:6881",     // bad address
                      "1.2.3:6881"));       // short address

class BadMagnet : public ::testing::TestWithParam<const char*> {};

TEST_P(BadMagnet, Rejected) {
  EXPECT_FALSE(MagnetLink::parse(GetParam()).has_value()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, BadMagnet,
    ::testing::Values(
        "",                                      // empty
        "http://not-a-magnet/",                  // wrong scheme
        "magnet:?dn=name-only",                  // no infohash
        "magnet:?xt=urn:btih:tooshort",          // bad hash length
        "magnet:?xt=urn:sha1:0000000000000000000000000000000000000000",  // wrong urn
        "magnet:?xt=urn:btih:zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz",  // bad hex
        "magnet:?xt",                            // no '='
        "magnet:?xt=urn:btih:0123456789abcdef0123456789abcdef01234567&dn=%zz"));

TEST(Magnet, AllZeroHashOnlyWhenLiteral) {
  const std::string zeros(40, '0');
  const auto parsed = MagnetLink::parse("magnet:?xt=urn:btih:" + zeros);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->infohash, Sha1Digest{});
}

}  // namespace
}  // namespace btpub
