// Magnet URI (BEP 9) rendering and parsing.
#include "torrent/magnet.hpp"

#include <gtest/gtest.h>

namespace btpub {
namespace {

TEST(Magnet, RoundTrip) {
  MagnetLink link;
  link.infohash = Sha1::hash("some torrent");
  link.display_name = "Dark Horizon (2010) [DVDRip]";
  link.trackers = {"http://tracker.btpub.example/announce",
                   "udp://tracker.btpub.example:6969"};
  const std::string uri = link.to_uri();
  const auto parsed = MagnetLink::parse(uri);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->infohash, link.infohash);
  EXPECT_EQ(parsed->display_name, link.display_name);
  EXPECT_EQ(parsed->trackers, link.trackers);
}

TEST(Magnet, MinimalForm) {
  MagnetLink link;
  link.infohash = Sha1::hash("x");
  const std::string uri = link.to_uri();
  EXPECT_EQ(uri, "magnet:?xt=urn:btih:" + link.infohash.hex());
  const auto parsed = MagnetLink::parse(uri);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->display_name.empty());
  EXPECT_TRUE(parsed->trackers.empty());
}

TEST(Magnet, EscapesSpecialCharacters) {
  MagnetLink link;
  link.infohash = Sha1::hash("y");
  link.display_name = "A & B = C?";
  const std::string uri = link.to_uri();
  EXPECT_EQ(uri.find("A & B"), std::string::npos);  // must be escaped
  const auto parsed = MagnetLink::parse(uri);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->display_name, "A & B = C?");
}

TEST(Magnet, IgnoresUnknownParameters) {
  const std::string uri = "magnet:?xt=urn:btih:" + Sha1::hash("z").hex() +
                          "&xl=12345&ws=http%3A%2F%2Fmirror.example%2F";
  const auto parsed = MagnetLink::parse(uri);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->infohash, Sha1::hash("z"));
}

class BadMagnet : public ::testing::TestWithParam<const char*> {};

TEST_P(BadMagnet, Rejected) {
  EXPECT_FALSE(MagnetLink::parse(GetParam()).has_value()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, BadMagnet,
    ::testing::Values(
        "",                                      // empty
        "http://not-a-magnet/",                  // wrong scheme
        "magnet:?dn=name-only",                  // no infohash
        "magnet:?xt=urn:btih:tooshort",          // bad hash length
        "magnet:?xt=urn:sha1:0000000000000000000000000000000000000000",  // wrong urn
        "magnet:?xt=urn:btih:zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz",  // bad hex
        "magnet:?xt",                            // no '='
        "magnet:?xt=urn:btih:0123456789abcdef0123456789abcdef01234567&dn=%zz"));

TEST(Magnet, AllZeroHashOnlyWhenLiteral) {
  const std::string zeros(40, '0');
  const auto parsed = MagnetLink::parse("magnet:?xt=urn:btih:" + zeros);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->infohash, Sha1Digest{});
}

}  // namespace
}  // namespace btpub
