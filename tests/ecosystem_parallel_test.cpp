// Determinism proof for the parallel ecosystem build: the generated world
// — observed through both crawl vantages — is byte-identical whether the
// publication fan-out runs on 1 worker or many. Each publication draws
// from its own derive_seed substream and results merge in event order, so
// scheduling can never leak into the dataset; these tests pin that.
//
// Thread count for the parallel side defaults to 4 and can be overridden
// with BTPUB_TEST_THREADS (the TSan CI job exercises 4).
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>

#include "core/ecosystem.hpp"
#include "crawler/compact_dataset.hpp"
#include "crawler/dataset_io.hpp"
#include "crawler/dataset_mmap.hpp"

namespace btpub {
namespace {

std::size_t parallel_threads() {
  if (const char* env = std::getenv("BTPUB_TEST_THREADS")) {
    const auto n = std::strtoull(env, nullptr, 10);
    if (n > 1) return static_cast<std::size_t>(n);
  }
  return 4;
}

/// spoofed() covers the decoy-injection branch too; shrunk so the test
/// builds and crawls two full ecosystems in seconds.
ScenarioConfig small_scenario(std::size_t threads) {
  ScenarioConfig config = ScenarioConfig::spoofed(7);
  config.window = days(3);
  config.population.regular_publishers /= 4;
  config.threads = threads;
  return config;
}

std::string serialize(const Dataset& dataset) {
  std::ostringstream out;
  save_dataset(dataset, out);
  return out.str();
}

class EcosystemParallelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    serial_ = new Ecosystem(small_scenario(1));
    serial_->build();
    parallel_ = new Ecosystem(small_scenario(parallel_threads()));
    parallel_->build();
  }
  static void TearDownTestSuite() {
    delete serial_;
    delete parallel_;
    serial_ = nullptr;
    parallel_ = nullptr;
  }

  static Ecosystem* serial_;
  static Ecosystem* parallel_;
};

Ecosystem* EcosystemParallelTest::serial_ = nullptr;
Ecosystem* EcosystemParallelTest::parallel_ = nullptr;

TEST_F(EcosystemParallelTest, GroundTruthMatches) {
  ASSERT_EQ(serial_->torrent_count(), parallel_->torrent_count());
  for (std::size_t i = 0; i < serial_->torrent_count(); ++i) {
    const TorrentTruth& a = serial_->truth(i);
    const TorrentTruth& b = parallel_->truth(i);
    ASSERT_EQ(a.publisher, b.publisher) << i;
    ASSERT_EQ(a.publisher_ip, b.publisher_ip) << i;
    ASSERT_EQ(a.removal_time, b.removal_time) << i;
    ASSERT_EQ(a.cross_posted, b.cross_posted) << i;
    ASSERT_EQ(a.seed_sessions.size(), b.seed_sessions.size()) << i;
    ASSERT_EQ(serial_->swarm_of(i).infohash(), parallel_->swarm_of(i).infohash())
        << i;
  }
}

TEST_F(EcosystemParallelTest, TrackerCrawlByteIdentical) {
  EXPECT_EQ(serialize(serial_->crawl()), serialize(parallel_->crawl()));
}

TEST_F(EcosystemParallelTest, DhtCrawlByteIdentical) {
  EXPECT_EQ(serialize(serial_->dht_crawl()), serialize(parallel_->dht_crawl()));
}

TEST_F(EcosystemParallelTest, BuildStatsRecorded) {
  EXPECT_EQ(serial_->build_stats().build_threads, 1u);
  EXPECT_EQ(parallel_->build_stats().build_threads, parallel_threads());
  // Every publication event committed exactly one torrent, on both sides.
  EXPECT_EQ(serial_->build_stats().publication_events, serial_->torrent_count());
  EXPECT_EQ(parallel_->build_stats().publication_events,
            parallel_->torrent_count());
}

TEST_F(EcosystemParallelTest, OverlayScheduleAllocatesNoClosures) {
  // The acceptance hook: the overlay's scheduled life lives entirely in
  // the typed lane — zero std::function closures — and periodic announces
  // are lazy cursors, so far fewer records are ever pending than
  // occurrences dispatched.
  const SimTime horizon = serial_->config().window + days(1);
  const auto overlay = serial_->build_dht_overlay(horizon);
  const EventQueue& q = overlay->events();
  EXPECT_EQ(q.callbacks_scheduled(), 0u);
  const std::size_t cursors = q.pending_typed();
  ASSERT_GT(cursors, 0u);
  overlay->advance_to(horizon);
  EXPECT_EQ(q.callbacks_scheduled(), 0u);
  EXPECT_EQ(overlay->events().pending(), 0u);
  // Re-arming happened: the same cursor records carried many occurrences.
  EXPECT_GT(q.dispatched(), static_cast<std::uint64_t>(cursors));
}

TEST_F(EcosystemParallelTest, CompactFormByteIdentical) {
  // The struct-of-arrays conversion is itself deterministic (interning and
  // flattening walk torrents in index order, user pages are sorted), so
  // the 1-vs-N invariant must survive it: identical compact arrays, and
  // identical datasets after inflating back.
  const CompactDataset a = compact_dataset(serial_->crawl());
  const CompactDataset b = compact_dataset(parallel_->crawl());
  EXPECT_EQ(a.text, b.text);
  EXPECT_EQ(a.peer_blob, b.peer_blob);
  EXPECT_EQ(std::memcmp(a.torrents.data(), b.torrents.data(),
                        a.torrents.size() * sizeof(TorrentRecordPod)),
            0);
  EXPECT_EQ(serialize(inflate(a.view())), serialize(inflate(b.view())));
}

TEST_F(EcosystemParallelTest, MmapSnapshotByteIdentical) {
  // End-to-end: the on-disk snapshot written from a 1-thread build equals
  // the one written from an N-thread build, byte for byte.
  std::ostringstream a(std::ios::binary), b(std::ios::binary);
  save_mmap_snapshot(compact_dataset(serial_->crawl()), a);
  save_mmap_snapshot(compact_dataset(parallel_->crawl()), b);
  ASSERT_FALSE(a.str().empty());
  EXPECT_EQ(a.str(), b.str());
}

TEST_F(EcosystemParallelTest, RepeatedDhtCrawlsIdentical) {
  // dht_crawl rebuilds a fresh overlay per call; two calls on the same
  // ecosystem must agree byte-for-byte (no hidden state carries over).
  EXPECT_EQ(serialize(parallel_->dht_crawl()),
            serialize(parallel_->dht_crawl()));
}

}  // namespace
}  // namespace btpub
