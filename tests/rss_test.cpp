// RSS 2.0 feed rendering and parsing (the crawler's discovery input).
#include "portal/rss.hpp"

#include <gtest/gtest.h>

namespace btpub {
namespace {

RssItem make_item(TorrentId id, const std::string& title) {
  RssItem item;
  item.id = id;
  item.title = title;
  item.category = ContentCategory::Movies;
  item.username = "uploader" + std::to_string(id);
  item.size_bytes = 734003200 + id;
  item.published_at = hours(1) + id;
  return item;
}

TEST(XmlEscape, RoundTrips) {
  const std::string nasty = "a<b>&c\"d'e &amp; <already>";
  EXPECT_EQ(xml_unescape(xml_escape(nasty)), nasty);
  EXPECT_EQ(xml_escape("<&>"), "&lt;&amp;&gt;");
}

TEST(XmlEscape, PlainTextUntouched) {
  EXPECT_EQ(xml_escape("Dark.Horizon.2010"), "Dark.Horizon.2010");
}

TEST(XmlUnescape, CharacterReferences) {
  EXPECT_EQ(xml_unescape("&#65;&#x42;"), "AB");
  EXPECT_EQ(xml_unescape("caf&#xE9;"), "caf\xC3\xA9");  // UTF-8 e-acute
}

TEST(XmlUnescape, RejectsMalformed) {
  EXPECT_THROW(xml_unescape("&unterminated"), std::invalid_argument);
  EXPECT_THROW(xml_unescape("&bogus;"), std::invalid_argument);
  EXPECT_THROW(xml_unescape("&#;"), std::invalid_argument);
  EXPECT_THROW(xml_unescape("&#x110000;"), std::invalid_argument);
  EXPECT_THROW(xml_unescape("&#0;"), std::invalid_argument);
}

TEST(Rss, RenderParseRoundTrip) {
  std::vector<RssItem> items{make_item(0, "First.Release.2010"),
                             make_item(1, "Second<&>Release"),
                             make_item(2, "Third 'quoted' \"thing\"")};
  const std::string xml = render_rss("the-sim-bay", items);
  const RssDocument doc = parse_rss(xml);
  EXPECT_EQ(doc.channel_title, "the-sim-bay");
  ASSERT_EQ(doc.items.size(), 3u);
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(doc.items[i].id, items[i].id);
    EXPECT_EQ(doc.items[i].title, items[i].title);
    EXPECT_EQ(doc.items[i].category, items[i].category);
    EXPECT_EQ(doc.items[i].username, items[i].username);
    EXPECT_EQ(doc.items[i].size_bytes, items[i].size_bytes);
    EXPECT_EQ(doc.items[i].published_at, items[i].published_at);
  }
}

TEST(Rss, EmptyFeed) {
  const std::string xml = render_rss("quiet-portal", {});
  const RssDocument doc = parse_rss(xml);
  EXPECT_EQ(doc.channel_title, "quiet-portal");
  EXPECT_TRUE(doc.items.empty());
}

TEST(Rss, DocumentLooksLikeRss2) {
  const std::vector<RssItem> items{make_item(7, "X")};
  const std::string xml = render_rss("p", items);
  EXPECT_NE(xml.find("<?xml version=\"1.0\""), std::string::npos);
  EXPECT_NE(xml.find("<rss version=\"2.0\""), std::string::npos);
  EXPECT_NE(xml.find("<guid>7</guid>"), std::string::npos);
  EXPECT_NE(xml.find("<btpub:user>uploader7</btpub:user>"), std::string::npos);
}

TEST(Rss, ToleratesUnknownElementsAndComments) {
  const std::string xml = R"(<?xml version="1.0"?>
<!-- a comment -->
<rss version="2.0"><channel>
<title>p</title><description>d</description>
<item>
  <title>T</title><guid>3</guid>
  <link>http://example/3</link>
  <category>Movies</category>
</item>
</channel></rss>)";
  const RssDocument doc = parse_rss(xml);
  ASSERT_EQ(doc.items.size(), 1u);
  EXPECT_EQ(doc.items[0].id, 3u);
  EXPECT_EQ(doc.items[0].category, ContentCategory::Movies);
}

TEST(Rss, RejectsMalformedDocuments) {
  EXPECT_THROW(parse_rss("not xml at all"), std::invalid_argument);
  EXPECT_THROW(parse_rss("<rss><channel></channel></rss>"),
               std::invalid_argument);  // missing title
  EXPECT_THROW(
      parse_rss("<rss><channel><title>t</title><description>d</description>"
                "<item><title>x</title></item></channel></rss>"),
      std::invalid_argument);  // item missing guid
  EXPECT_THROW(
      parse_rss("<rss><channel><title>t</title><description>d</description>"
                "</channel></rss>trailing"),
      std::invalid_argument);
  EXPECT_THROW(
      parse_rss("<rss><channel><title>t</channel></title>"),  // mismatched
      std::invalid_argument);
}

TEST(Rss, PortalFeedIsParseable) {
  // End to end: a real portal's rss_since rendered and re-parsed.
  Portal portal("feed-test");
  for (int i = 0; i < 5; ++i) {
    PublishRequest request;
    request.title = "Item & <" + std::to_string(i) + ">";
    request.category = ContentCategory::Music;
    request.username = "user" + std::to_string(i);
    request.torrent_bytes = "x";
    request.size_bytes = 1000 + i;
    portal.publish(std::move(request), 100 + i);
  }
  const auto items = portal.rss_since(kInvalidTorrent, 1000);
  const RssDocument doc = parse_rss(render_rss(portal.name(), items));
  ASSERT_EQ(doc.items.size(), 5u);
  EXPECT_EQ(doc.items[2].title, "Item & <2>");
  EXPECT_EQ(doc.items[2].username, "user2");
}

}  // namespace
}  // namespace btpub
