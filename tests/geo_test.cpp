// GeoIP database and ISP catalog tests.
#include <gtest/gtest.h>

#include <set>

#include "geo/geo_db.hpp"
#include "geo/isp_catalog.hpp"

namespace btpub {
namespace {

TEST(GeoDb, LookupWithinBlock) {
  GeoDb db;
  const IspId isp = db.add_isp("TestNet", IspType::CommercialIsp, "US");
  db.add_block(CidrBlock(IpAddress(10, 0, 0, 0), 16), isp, "Springfield");
  const auto loc = db.lookup(IpAddress(10, 0, 42, 42));
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(loc->isp_name, "TestNet");
  EXPECT_EQ(loc->isp_type, IspType::CommercialIsp);
  EXPECT_EQ(loc->country, "US");
  EXPECT_EQ(loc->city, "Springfield");
}

TEST(GeoDb, MissLookup) {
  GeoDb db;
  const IspId isp = db.add_isp("TestNet", IspType::CommercialIsp, "US");
  db.add_block(CidrBlock(IpAddress(10, 0, 0, 0), 16), isp, "A");
  EXPECT_FALSE(db.lookup(IpAddress(10, 1, 0, 0)).has_value());
  EXPECT_FALSE(db.lookup(IpAddress(11, 0, 0, 0)).has_value());
}

TEST(GeoDb, LongestPrefixWins) {
  GeoDb db;
  const IspId coarse = db.add_isp("Coarse", IspType::CommercialIsp, "US");
  const IspId fine = db.add_isp("Fine", IspType::HostingProvider, "FR");
  db.add_block(CidrBlock(IpAddress(10, 0, 0, 0), 8), coarse, "Anywhere");
  db.add_block(CidrBlock(IpAddress(10, 5, 0, 0), 16), fine, "Roubaix");
  EXPECT_EQ(db.lookup(IpAddress(10, 5, 1, 1))->isp_name, "Fine");
  EXPECT_EQ(db.lookup(IpAddress(10, 6, 1, 1))->isp_name, "Coarse");
}

TEST(GeoDb, DuplicateIspNameThrows) {
  GeoDb db;
  db.add_isp("X", IspType::CommercialIsp, "US");
  EXPECT_THROW(db.add_isp("X", IspType::HostingProvider, "FR"),
               std::invalid_argument);
}

TEST(GeoDb, UnknownIspIdOnBlockThrows) {
  GeoDb db;
  EXPECT_THROW(db.add_block(CidrBlock(IpAddress(1, 0, 0, 0), 16), 99, "c"),
               std::invalid_argument);
}

TEST(GeoDb, FindIspByName) {
  GeoDb db;
  const IspId a = db.add_isp("Alpha", IspType::CommercialIsp, "US");
  EXPECT_EQ(db.find_isp("Alpha"), a);
  EXPECT_EQ(db.find_isp("Beta"), std::nullopt);
  EXPECT_EQ(db.isp(a).name, "Alpha");
}

TEST(IspTypeNames, Rendering) {
  EXPECT_EQ(to_string(IspType::HostingProvider), "Hosting Provider");
  EXPECT_EQ(to_string(IspType::CommercialIsp), "Commercial ISP");
}

// --- Standard catalog structure (the synthetic Internet). ---

TEST(IspCatalog, PaperActorsPresent) {
  const IspCatalog cat = IspCatalog::standard();
  for (const char* name : {"OVH", "Comcast", "tzulo", "FDCservers", "4RWEB",
                           "SoftLayer Tech.", "Telefonica", "Virgin Media"}) {
    EXPECT_TRUE(cat.has(name)) << name;
  }
  EXPECT_FALSE(cat.has("NoSuchNet"));
  EXPECT_THROW(cat.pool("NoSuchNet"), std::out_of_range);
}

TEST(IspCatalog, HostingVsCommercialStructure) {
  const IspCatalog cat = IspCatalog::standard();
  // OVH: handful of /16s; Comcast: hundreds.
  EXPECT_EQ(cat.pool("OVH").blocks().size(), 7u);
  EXPECT_EQ(cat.pool("Comcast").blocks().size(), 300u);
  const auto loc = cat.db().lookup(cat.pool("OVH").blocks().front().base());
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(loc->isp_type, IspType::HostingProvider);
  EXPECT_EQ(loc->country, "FR");
}

TEST(IspCatalog, BlocksDoNotOverlapAcrossIsps) {
  const IspCatalog cat = IspCatalog::standard();
  // Any address maps to exactly the ISP whose block covers it; sample OVH
  // and Comcast extremes.
  for (const auto& block : cat.pool("OVH").blocks()) {
    EXPECT_EQ(cat.db().lookup(block.at(1))->isp_name, "OVH");
  }
  EXPECT_EQ(cat.db().lookup(cat.pool("Comcast").blocks()[299].at(5))->isp_name,
            "Comcast");
}

TEST(IspCatalog, ServerAllocationStripesAcrossBlocksAndCities) {
  IspCatalog cat = IspCatalog::standard();
  IpPool& ovh = cat.pool("OVH");
  std::set<std::uint16_t> prefixes;
  std::set<std::string> cities;
  std::set<std::uint32_t> addresses;
  for (int i = 0; i < 40; ++i) {
    const IpAddress ip = ovh.allocate_server();
    addresses.insert(ip.value());
    prefixes.insert(Prefix16(ip).value());
    cities.insert(std::string(cat.db().lookup(ip)->city));
  }
  EXPECT_EQ(addresses.size(), 40u);  // all distinct
  EXPECT_EQ(prefixes.size(), 7u);    // spans every OVH /16
  EXPECT_EQ(cities.size(), 4u);      // Roubaix, Paris, Gravelines, Strasbourg
}

TEST(IspCatalog, ResidentialAddressesSpreadAcrossPrefixes) {
  const IspCatalog cat = IspCatalog::standard();
  Rng rng(3);
  std::set<std::uint16_t> prefixes;
  for (int i = 0; i < 400; ++i) {
    const IpAddress ip = cat.pool("Comcast").random_residential(rng);
    EXPECT_EQ(cat.db().lookup(ip)->isp_name, "Comcast");
    prefixes.insert(Prefix16(ip).value());
  }
  EXPECT_GT(prefixes.size(), 150u);  // far more scattered than any hoster
}

TEST(IspCatalog, EyeballListNonEmptyAndResolvable) {
  const IspCatalog cat = IspCatalog::standard(10);
  EXPECT_GE(cat.eyeball_names().size(), 10u);
  Rng rng(4);
  for (const auto& name : cat.eyeball_names()) {
    const IpAddress ip = cat.pool(name).random_residential(rng);
    ASSERT_TRUE(cat.db().lookup(ip).has_value()) << name;
  }
}

}  // namespace
}  // namespace btpub
