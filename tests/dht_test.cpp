// Mainline DHT building blocks (BEP 5): node ids and the XOR metric, KRPC
// codecs, k-bucket routing tables, rotating announce tokens, and the
// per-node peer store + query handler.
#include <gtest/gtest.h>

#include "dht/node.hpp"
#include "dht/node_id.hpp"
#include "dht/krpc.hpp"
#include "dht/routing_table.hpp"

namespace btpub::dht {
namespace {

NodeId id_with(std::uint8_t first, std::uint8_t last = 0) {
  NodeId id;
  id.bytes[0] = first;
  id.bytes[19] = last;
  return id;
}

// ---- node ids and the XOR metric ----

TEST(NodeIdTest, DistanceIsXor) {
  const NodeId a = id_with(0xF0, 0x0F);
  const NodeId b = id_with(0x0F, 0x0F);
  const NodeId d = distance(a, b);
  EXPECT_EQ(d.bytes[0], 0xFF);
  EXPECT_EQ(d.bytes[19], 0x00);
  EXPECT_EQ(distance(a, a), NodeId{});
}

TEST(NodeIdTest, CloserComparesBigEndianMagnitude) {
  const NodeId target = id_with(0x00);
  EXPECT_TRUE(closer(id_with(0x01), id_with(0x02), target));
  EXPECT_FALSE(closer(id_with(0x02), id_with(0x01), target));
  // Equal distance: not closer.
  EXPECT_FALSE(closer(id_with(0x01), id_with(0x01), target));
  // The high byte dominates regardless of the tail.
  EXPECT_TRUE(closer(id_with(0x01, 0xFF), id_with(0x02, 0x00), target));
}

TEST(NodeIdTest, DistanceBitIsBucketIndex) {
  EXPECT_EQ(distance_bit(NodeId{}), -1);
  EXPECT_EQ(distance_bit(id_with(0x80)), 159);
  EXPECT_EQ(distance_bit(id_with(0x00, 0x01)), 0);
  EXPECT_EQ(distance_bit(id_with(0x00, 0x80)), 7);
}

TEST(NodeIdTest, ForEndpointIsDeterministicAndEndpointSensitive) {
  const Endpoint e1{IpAddress(1, 2, 3, 4), 6881};
  const Endpoint e2{IpAddress(1, 2, 3, 4), 6882};
  EXPECT_EQ(NodeId::for_endpoint(7, e1), NodeId::for_endpoint(7, e1));
  EXPECT_NE(NodeId::for_endpoint(7, e1), NodeId::for_endpoint(7, e2));
  EXPECT_NE(NodeId::for_endpoint(7, e1), NodeId::for_endpoint(8, e1));
}

// ---- KRPC codecs ----

TEST(KrpcTest, CompactNodeRoundTrip) {
  std::string blob;
  const NodeInfo a{id_with(0xAA, 0x01), {IpAddress(10, 0, 0, 1), 6881}};
  const NodeInfo b{id_with(0xBB, 0x02), {IpAddress(10, 0, 0, 2), 51413}};
  append_compact_node(blob, a);
  append_compact_node(blob, b);
  ASSERT_EQ(blob.size(), 52u);
  const auto nodes = parse_compact_nodes(blob);
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_EQ(nodes[0], a);
  EXPECT_EQ(nodes[1], b);
  // A ragged blob is rejected wholesale rather than partially parsed.
  EXPECT_TRUE(parse_compact_nodes(blob.substr(0, 51)).empty());
}

TEST(KrpcTest, QueryRoundTripAllMethods) {
  for (const Method method : {Method::Ping, Method::FindNode, Method::GetPeers,
                              Method::AnnouncePeer}) {
    Query query;
    query.transaction_id = "aa";
    query.method = method;
    query.sender_id = id_with(0x42, 0x24);
    query.target = id_with(0x11);
    query.info_hash = Sha1::hash("krpc");
    query.port = 6881;
    query.token = "tok~";
    query.read_only = (method == Method::GetPeers);
    const auto decoded = Query::decode(query.encode());
    ASSERT_TRUE(decoded.has_value()) << to_string(method);
    EXPECT_EQ(decoded->transaction_id, "aa");
    EXPECT_EQ(decoded->method, method);
    EXPECT_EQ(decoded->sender_id, query.sender_id);
    EXPECT_EQ(decoded->read_only, query.read_only);
    if (method == Method::FindNode) {
      EXPECT_EQ(decoded->target, query.target);
    }
    if (method == Method::GetPeers || method == Method::AnnouncePeer) {
      EXPECT_EQ(decoded->info_hash, query.info_hash);
    }
    if (method == Method::AnnouncePeer) {
      EXPECT_EQ(decoded->port, 6881);
      EXPECT_EQ(decoded->token, "tok~");
    }
  }
}

TEST(KrpcTest, ResponseRoundTripWithNodesPeersAndToken) {
  Response res;
  res.transaction_id = "tx";
  res.sender_id = id_with(0x77);
  res.nodes = {{id_with(0x01), {IpAddress(10, 1, 1, 1), 1000}},
               {id_with(0x02), {IpAddress(10, 1, 1, 2), 2000}}};
  res.peers = {{IpAddress(10, 2, 2, 1), 3000}, {IpAddress(10, 2, 2, 2), 4000}};
  res.token = "write-token";
  const auto decoded = Response::decode(res.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->transaction_id, "tx");
  EXPECT_EQ(decoded->sender_id, res.sender_id);
  EXPECT_EQ(decoded->nodes, res.nodes);
  EXPECT_EQ(decoded->peers, res.peers);
  EXPECT_EQ(decoded->token, "write-token");
}

TEST(KrpcTest, ErrorRoundTripAndKindPeek) {
  ErrorMessage error;
  error.transaction_id = "e1";
  error.code = kErrorProtocol;
  error.message = "bad token";
  const std::string wire = error.encode();
  EXPECT_EQ(message_kind(wire), 'e');
  const auto decoded = ErrorMessage::decode(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->code, kErrorProtocol);
  EXPECT_EQ(decoded->message, "bad token");

  Query q;
  q.transaction_id = "q1";
  EXPECT_EQ(message_kind(q.encode()), 'q');
  EXPECT_FALSE(message_kind("not bencode").has_value());
}

TEST(KrpcTest, DecodeRejectsMalformedMessages) {
  EXPECT_FALSE(Query::decode("").has_value());
  EXPECT_FALSE(Query::decode("d1:y1:qe").has_value());       // no method
  EXPECT_FALSE(Query::decode("i42e").has_value());           // not a dict
  EXPECT_FALSE(Response::decode("d1:y1:re").has_value());    // no body
  EXPECT_FALSE(ErrorMessage::decode("d1:y1:ee").has_value());
  // A query with an unknown method name must not decode as some default.
  Query q;
  q.transaction_id = "xx";
  std::string wire = q.encode();
  const std::size_t at = wire.find("4:ping");
  ASSERT_NE(at, std::string::npos);
  wire.replace(at, 6, "4:pong");
  EXPECT_FALSE(Query::decode(wire).has_value());
}

// ---- routing table ----

TEST(RoutingTableTest, ObserveInsertsAndSelfIsIgnored) {
  RoutingTable table(id_with(0x00));
  table.observe(id_with(0x00), {IpAddress(10, 0, 0, 1), 1}, 0);  // self
  EXPECT_EQ(table.size(), 0u);
  table.observe(id_with(0x80), {IpAddress(10, 0, 0, 2), 2}, 0);
  table.observe(id_with(0x81), {IpAddress(10, 0, 0, 3), 3}, 0);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_TRUE(table.contains(id_with(0x80)));
}

TEST(RoutingTableTest, FullBucketEvictsOnlyStaleContacts) {
  RoutingTable table(id_with(0x00));
  // Fill one bucket (all ids share the top distance bit).
  for (std::uint8_t i = 0; i < RoutingTable::kBucketSize; ++i) {
    table.observe(id_with(0x80, i), {IpAddress(0x0A000000u + i), 6881}, 0);
  }
  ASSERT_EQ(table.size(), RoutingTable::kBucketSize);
  // Fresh bucket: the newcomer is dropped.
  table.observe(id_with(0x80, 0x99), {IpAddress(10, 9, 9, 9), 6881},
                minutes(1));
  EXPECT_FALSE(table.contains(id_with(0x80, 0x99)));
  // Once the oldest contact has gone quiet past kStaleAfter, a newcomer
  // takes its slot.
  const SimTime later = minutes(1) + RoutingTable::kStaleAfter + 1;
  table.observe(id_with(0x80, 0x99), {IpAddress(10, 9, 9, 9), 6881}, later);
  EXPECT_TRUE(table.contains(id_with(0x80, 0x99)));
  EXPECT_FALSE(table.contains(id_with(0x80, 0)));  // LRU victim
  EXPECT_EQ(table.size(), RoutingTable::kBucketSize);
}

TEST(RoutingTableTest, ClosestReturnsXorOrder) {
  RoutingTable table(id_with(0x00));
  for (std::uint8_t i = 1; i <= 10; ++i) {
    table.observe(id_with(i), {IpAddress(0x0A000000u + i), 6881}, 0);
  }
  std::vector<Contact> out;
  table.closest(id_with(0x01), 3, out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].id, id_with(0x01));  // distance 0
  // Every later entry is no closer than its predecessor.
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_FALSE(closer(out[i].id, out[i - 1].id, id_with(0x01)));
  }
}

// ---- tokens ----

TEST(TokenJarTest, TokenValidInCurrentAndPreviousEpochOnly) {
  const TokenJar jar(1234);
  const IpAddress ip(83, 1, 2, 3);
  const SimTime t0 = minutes(7);
  const std::string token = jar.token_for(ip, t0);
  EXPECT_EQ(token.size(), 8u);
  EXPECT_TRUE(jar.valid(token, ip, t0));
  // Still good through the next rotation (BEP 5's ten-minute window)...
  EXPECT_TRUE(jar.valid(token, ip, t0 + TokenJar::kTokenRotate));
  // ...but not two epochs out.
  EXPECT_FALSE(jar.valid(token, ip, t0 + 2 * TokenJar::kTokenRotate));
  // Bound to the IP it was issued to.
  EXPECT_FALSE(jar.valid(token, IpAddress(83, 1, 2, 4), t0));
  // Different secrets issue different tokens.
  EXPECT_NE(TokenJar(99).token_for(ip, t0), token);
}

// ---- peer store ----

TEST(PeerStoreTest, AnnounceCollectExpire) {
  PeerStore store;
  const Sha1Digest hash = Sha1::hash("stored");
  store.announce(hash, {IpAddress(10, 0, 0, 1), 1}, 0);
  store.announce(hash, {IpAddress(10, 0, 0, 2), 2}, minutes(10));
  EXPECT_EQ(store.stored_peers(), 2u);

  std::vector<Endpoint> out;
  store.collect(hash, minutes(20), out);
  EXPECT_EQ(out.size(), 2u);
  // The first announcer ages out kPeerTtl after its announce...
  store.collect(hash, PeerStore::kPeerTtl + 1, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (Endpoint{IpAddress(10, 0, 0, 2), 2}));
  // ...and a refresh resets the clock.
  store.announce(hash, {IpAddress(10, 0, 0, 2), 2},
                 PeerStore::kPeerTtl + minutes(1));
  store.collect(hash, 2 * PeerStore::kPeerTtl, out);
  EXPECT_EQ(out.size(), 1u);
  // expire() drops empty infohashes entirely.
  store.expire(4 * PeerStore::kPeerTtl);
  EXPECT_EQ(store.stored_peers(), 0u);
  EXPECT_EQ(store.stored_infohashes(), 0u);
}

TEST(PeerStoreTest, ReplyWindowCoversMostRecentAnnouncers) {
  PeerStore store;
  const Sha1Digest hash = Sha1::hash("busy");
  // More announcers than fit one reply: the reply must track the newest.
  const std::size_t total = PeerStore::kMaxPeersPerReply + 10;
  for (std::size_t i = 0; i < total; ++i) {
    store.announce(hash, {IpAddress(0x0A000000u + std::uint32_t(i)), 6881},
                   SimTime(i));
  }
  std::vector<Endpoint> out;
  store.collect(hash, SimTime(total), out);
  ASSERT_EQ(out.size(), PeerStore::kMaxPeersPerReply);
  // The newest announcer is visible; the oldest ten are outside the window.
  EXPECT_EQ(out.back().ip.value(), 0x0A000000u + std::uint32_t(total - 1));
  EXPECT_EQ(out.front().ip.value(), 0x0A00000Au);
  // Re-announcing an old peer pulls it back into the window.
  store.announce(hash, {IpAddress(0x0A000000u), 6881}, SimTime(total));
  store.collect(hash, SimTime(total), out);
  EXPECT_EQ(out.back().ip.value(), 0x0A000000u);
}

// ---- node query handler ----

class DhtNodeTest : public ::testing::Test {
 protected:
  DhtNodeTest()
      : node_(NodeId::for_endpoint(1, kSelf), kSelf, /*token_secret=*/555) {}

  static constexpr Endpoint kSelf{IpAddress(10, 0, 0, 1), 6881};
  static constexpr Endpoint kAsker{IpAddress(10, 0, 0, 2), 7000};

  Response ask(Query& query, const Endpoint& from, SimTime now) {
    query.transaction_id = "t1";
    query.sender_id = NodeId::for_endpoint(1, from);
    const auto response = Response::decode(node_.handle(query.encode(), from, now));
    EXPECT_TRUE(response.has_value());
    return response.value_or(Response{});
  }

  DhtNode node_;
};

TEST_F(DhtNodeTest, PingEchoesTransactionAndLearnsSender) {
  Query ping;
  ping.method = Method::Ping;
  const Response res = ask(ping, kAsker, 10);
  EXPECT_EQ(res.transaction_id, "t1");
  EXPECT_EQ(res.sender_id, node_.id());
  EXPECT_TRUE(node_.table().contains(NodeId::for_endpoint(1, kAsker)));
}

TEST_F(DhtNodeTest, ReadOnlySendersStayOutOfTheTable) {
  Query ping;
  ping.method = Method::Ping;
  ping.read_only = true;
  ask(ping, kAsker, 10);
  EXPECT_EQ(node_.table().size(), 0u);
}

TEST_F(DhtNodeTest, GetPeersReturnsNodesAlongsideValues) {
  // Teach the node a contact and store a peer, then ask.
  Query ping;
  ping.method = Method::Ping;
  ask(ping, kAsker, 10);

  Query get;
  get.method = Method::GetPeers;
  get.info_hash = Sha1::hash("wanted");
  const Response empty = ask(get, kAsker, 20);
  EXPECT_TRUE(empty.peers.empty());
  EXPECT_FALSE(empty.nodes.empty());
  ASSERT_FALSE(empty.token.empty());

  Query announce;
  announce.method = Method::AnnouncePeer;
  announce.info_hash = get.info_hash;
  announce.port = 7000;
  announce.token = empty.token;
  ask(announce, kAsker, 30);

  const Response full = ask(get, kAsker, 40);
  ASSERT_EQ(full.peers.size(), 1u);
  // Even with values in hand the reply keeps routing the lookup: both
  // values and closer nodes are present (the BEP 5 errata behaviour).
  EXPECT_FALSE(full.nodes.empty());
}

TEST_F(DhtNodeTest, AnnounceStoresSourceAddressNotClaimedOne) {
  Query get;
  get.method = Method::GetPeers;
  get.info_hash = Sha1::hash("spoof-proof");
  const Response res = ask(get, kAsker, 10);

  Query announce;
  announce.method = Method::AnnouncePeer;
  announce.info_hash = get.info_hash;
  announce.port = 9999;  // the port is the sender's claim...
  announce.token = res.token;
  ask(announce, kAsker, 20);

  const Response after = ask(get, kAsker, 30);
  ASSERT_EQ(after.peers.size(), 1u);
  // ...but the IP is taken from the datagram source — an address you do
  // not hold cannot be announced (unlike a tracker announce).
  EXPECT_EQ(after.peers[0], (Endpoint{kAsker.ip, 9999}));
}

TEST_F(DhtNodeTest, AnnounceWithBadTokenIsRejected) {
  Query announce;
  announce.method = Method::AnnouncePeer;
  announce.info_hash = Sha1::hash("no token");
  announce.port = 7000;
  announce.token = "forged!!";
  announce.transaction_id = "t9";
  announce.sender_id = NodeId::for_endpoint(1, kAsker);
  const std::string raw = node_.handle(announce.encode(), kAsker, 10);
  const auto error = ErrorMessage::decode(raw);
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->code, kErrorProtocol);
  EXPECT_EQ(error->transaction_id, "t9");

  Query get;
  get.method = Method::GetPeers;
  get.info_hash = announce.info_hash;
  EXPECT_TRUE(ask(get, kAsker, 20).peers.empty());
}

TEST_F(DhtNodeTest, TokenFromAnotherIpIsRejected) {
  Query get;
  get.method = Method::GetPeers;
  get.info_hash = Sha1::hash("stolen token");
  const Response res = ask(get, kAsker, 10);

  const Endpoint thief{IpAddress(66, 6, 6, 6), 7000};
  Query announce;
  announce.method = Method::AnnouncePeer;
  announce.info_hash = get.info_hash;
  announce.port = 7000;
  announce.token = res.token;
  announce.transaction_id = "t2";
  announce.sender_id = NodeId::for_endpoint(1, thief);
  const auto error =
      ErrorMessage::decode(node_.handle(announce.encode(), thief, 20));
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->code, kErrorProtocol);
}

TEST_F(DhtNodeTest, MalformedDatagramYieldsErrorMessage) {
  const auto error = ErrorMessage::decode(node_.handle("garbage", kAsker, 10));
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->code, kErrorProtocol);
}

}  // namespace
}  // namespace btpub::dht
