// ThreadPool: task execution, FIFO ordering on a single worker, exception
// propagation through futures, and drain-on-shutdown semantics.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace btpub {
namespace {

TEST(ThreadPoolTest, ResolveThreads) {
  EXPECT_EQ(ThreadPool::resolve_threads(4), 4u);
  EXPECT_EQ(ThreadPool::resolve_threads(1), 1u);
  EXPECT_GE(ThreadPool::resolve_threads(0), 1u);  // hardware concurrency
}

TEST(ThreadPoolTest, ExecutesTasksAndReturnsValues) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, SingleWorkerPreservesSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.submit([i, &order] { order.push_back(i); }));
  }
  for (auto& future : futures) future.get();
  std::vector<int> expected(20);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto bad = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  auto good = pool.submit([] { return 7; });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // A throwing task must not take the worker down with it.
  EXPECT_EQ(good.get(), 7);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> executed{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      futures.push_back(pool.submit([&executed] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++executed;
      }));
    }
    // Destructor runs here with most tasks still queued.
  }
  EXPECT_EQ(executed.load(), 100);
  for (auto& future : futures) {
    EXPECT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
  }
}

TEST(ThreadPoolTest, ConcurrentSubmitters) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  std::vector<std::thread> submitters;
  std::mutex futures_mutex;
  std::vector<std::future<void>> futures;
  for (int s = 0; s < 4; ++s) {
    submitters.emplace_back([&] {
      for (int i = 0; i < 25; ++i) {
        auto future = pool.submit([&total] { ++total; });
        std::lock_guard<std::mutex> lock(futures_mutex);
        futures.push_back(std::move(future));
      }
    });
  }
  for (auto& submitter : submitters) submitter.join();
  for (auto& future : futures) future.get();
  EXPECT_EQ(total.load(), 100);
}

}  // namespace
}  // namespace btpub
