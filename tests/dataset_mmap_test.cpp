// Zero-copy mmap snapshot: round trips, validation, consumer identity.
#include "crawler/dataset_mmap.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/classify.hpp"
#include "analysis/groups.hpp"
#include "crawler/compact_dataset.hpp"
#include "crawler/dataset_io.hpp"

namespace btpub {
namespace {

/// Canonical bytes of a dataset: the stream serializer is deterministic
/// (sorted user pages), so byte equality here is full structural equality.
std::string canonical_bytes(const Dataset& d) {
  std::ostringstream out(std::ios::binary);
  save_dataset(d, out);
  return out.str();
}

Dataset sample_dataset(DatasetStyle style) {
  Dataset d;
  d.name = "sample";
  d.style = style;
  d.window_start = hours(2);
  d.window_end = days(40);

  for (int i = 0; i < 40; ++i) {
    TorrentRecord r;
    r.portal_id = static_cast<TorrentId>(i);
    r.infohash = Sha1::hash("torrent" + std::to_string(i));
    r.title = "Content." + std::to_string(i) + ".DVDRip-divxatope.com";
    r.category = static_cast<ContentCategory>(i % 6);
    r.language = static_cast<Language>(i % 4);
    r.size_bytes = 1000000 + i * 7919;
    r.username = "user" + std::to_string(i % 7);  // heavy intern sharing
    if (i % 3 != 0) r.publisher_ip = IpAddress(0x0a000000u + i);
    r.published_at = hours(i);
    r.first_seen = hours(i) + minutes(3);
    if (i % 4 == 0) r.textbox = "Visit http://www.divxatope.com/ !";
    r.payload_filenames = {"film" + std::to_string(i) + ".avi",
                           "Visit-www-divxatope-com.txt"};
    r.piece_count = 100 + i;
    r.observed_removed = i % 10 == 0;
    if (r.observed_removed) r.observed_removed_at = days(2);
    r.initial_seeders = i;
    r.initial_peers = 2 * i;
    r.query_count = 5 + i;
    r.max_concurrent = 3 + i;
    d.torrents.push_back(std::move(r));

    std::vector<IpAddress> ips;
    for (int k = 0; k < i % 9; ++k) {
      ips.emplace_back(0x20000000u + static_cast<std::uint32_t>(i * 100 + k));
    }
    d.downloaders.push_back(std::move(ips));
    std::vector<SimTime> sightings;
    for (int k = 0; k < i % 4; ++k) sightings.push_back(hours(i) + minutes(k));
    d.publisher_sightings.push_back(std::move(sightings));
  }
  for (int u = 0; u < 7; ++u) {
    UserPage page;
    page.username = "user" + std::to_string(u);
    page.banned = u == 5;
    for (int k = 0; k < u; ++k) page.publish_times.push_back(days(k));
    d.user_pages.emplace(page.username, page);
  }
  return d;
}

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(CompactDataset, LosslessRoundTripAllStyles) {
  for (const DatasetStyle style :
       {DatasetStyle::Mn08, DatasetStyle::Pb09, DatasetStyle::Pb10}) {
    const Dataset original = sample_dataset(style);
    const CompactDataset compact = compact_dataset(original);
    const Dataset back = inflate(compact.view());
    EXPECT_EQ(canonical_bytes(back), canonical_bytes(original));
  }
}

TEST(CompactDataset, InternSharesBytes) {
  const Dataset original = sample_dataset(DatasetStyle::Pb10);
  const CompactDataset compact = compact_dataset(original);
  // 7 usernames and 1 repeated payload filename across 40 torrents: the
  // arena must hold each distinct string once.
  std::size_t distinct_total = 0;
  std::vector<std::string> seen;
  auto note = [&](const std::string& s) {
    if (s.empty()) return;
    for (const std::string& t : seen) {
      if (t == s) return;
    }
    seen.push_back(s);
    distinct_total += s.size();
  };
  for (const TorrentRecord& r : original.torrents) {
    note(r.title);
    note(r.username);
    note(r.textbox);
    for (const std::string& f : r.payload_filenames) note(f);
  }
  EXPECT_EQ(compact.text.size(), distinct_total);
}

TEST(CompactDataset, SummaryHelpersMatchDataset) {
  const Dataset original = sample_dataset(DatasetStyle::Pb09);
  const CompactDataset compact = compact_dataset(original);
  const CompactDatasetView view = compact.view();
  EXPECT_EQ(view.torrent_count(), original.torrents.size());
  EXPECT_EQ(view.with_username(), original.with_username());
  EXPECT_EQ(view.with_publisher_ip(), original.with_publisher_ip());
  EXPECT_EQ(view.distinct_ips_global(), original.distinct_ips_global());
  EXPECT_EQ(view.ip_observations_total(), original.ip_observations_total());
}

TEST(MappedDataset, RoundTripAllStyles) {
  for (const DatasetStyle style :
       {DatasetStyle::Mn08, DatasetStyle::Pb09, DatasetStyle::Pb10}) {
    const Dataset original = sample_dataset(style);
    const std::string path = tmp_path("roundtrip.mmap");
    save_mmap_snapshot(original, path);
    const MappedDataset mapped(path);
    EXPECT_EQ(canonical_bytes(mapped.to_dataset()), canonical_bytes(original));
  }
}

TEST(MappedDataset, EmptyDataset) {
  Dataset empty;
  empty.name = "empty";
  empty.style = DatasetStyle::Mn08;
  const std::string path = tmp_path("empty.mmap");
  save_mmap_snapshot(empty, path);
  const MappedDataset mapped(path);
  EXPECT_EQ(mapped.view().torrent_count(), 0u);
  EXPECT_EQ(mapped.view().name, "empty");
  EXPECT_EQ(canonical_bytes(mapped.to_dataset()), canonical_bytes(empty));
}

TEST(MappedDataset, RejectsMissingFile) {
  EXPECT_THROW(MappedDataset(tmp_path("does_not_exist.mmap")),
               std::runtime_error);
}

TEST(MappedDataset, RejectsTruncatedFile) {
  const Dataset original = sample_dataset(DatasetStyle::Pb10);
  const std::string path = tmp_path("trunc.mmap");
  save_mmap_snapshot(original, path);
  const std::vector<char> bytes = slurp(path);
  ASSERT_GT(bytes.size(), 64u);
  // Cut inside the header, then inside the sections.
  spit(path, std::vector<char>(bytes.begin(), bytes.begin() + 20));
  EXPECT_THROW(MappedDataset{path}, std::runtime_error);
  spit(path, std::vector<char>(bytes.begin(),
                               bytes.begin() +
                                   static_cast<std::ptrdiff_t>(bytes.size() / 2)));
  EXPECT_THROW(MappedDataset{path}, std::runtime_error);
}

TEST(MappedDataset, RejectsBadMagicAndVersion) {
  const Dataset original = sample_dataset(DatasetStyle::Pb10);
  const std::string path = tmp_path("magic.mmap");
  save_mmap_snapshot(original, path);
  std::vector<char> bytes = slurp(path);

  std::vector<char> bad = bytes;
  bad[0] ^= 0x40;
  spit(path, bad);
  EXPECT_THROW(MappedDataset{path}, std::runtime_error);

  // Version field sits right after the 8-byte magic.
  bad = bytes;
  std::uint32_t version = 0;
  std::memcpy(&version, bad.data() + 8, sizeof version);
  version += 1;
  std::memcpy(bad.data() + 8, &version, sizeof version);
  spit(path, bad);
  EXPECT_THROW(MappedDataset{path}, std::runtime_error);
}

TEST(MappedDataset, RejectsCorruptSectionTable) {
  const Dataset original = sample_dataset(DatasetStyle::Pb10);
  const std::string path = tmp_path("table.mmap");
  save_mmap_snapshot(original, path);
  std::vector<char> bytes = slurp(path);
  // First section entry: {u32 id, u32 reserved, u64 offset, u64 size} at
  // byte 64. Point it past the end of the file.
  const std::uint64_t bogus = bytes.size() + 4096;
  std::memcpy(bytes.data() + 64 + 8, &bogus, sizeof bogus);
  spit(path, bytes);
  EXPECT_THROW(MappedDataset{path}, std::runtime_error);
}

TEST(MappedDataset, RejectsCorruptRecordPayloadOnInflate) {
  const Dataset original = sample_dataset(DatasetStyle::Pb10);
  const std::string path = tmp_path("payload.mmap");
  save_mmap_snapshot(original, path);
  std::vector<char> bytes = slurp(path);

  // Find the TorrentPods section (id 2) in the table and blow up the first
  // record's title length (StrRef sits after the five leading 8-byte
  // fields). The O(1) open must still succeed — the mapping stays
  // zero-copy — and the deep validation in to_dataset() must throw.
  std::uint32_t section_count = 0;
  std::memcpy(&section_count, bytes.data() + 12, sizeof section_count);
  std::uint64_t pods_offset = 0;
  for (std::uint32_t k = 0; k < section_count; ++k) {
    std::uint32_t id = 0;
    std::memcpy(&id, bytes.data() + 64 + 24 * k, sizeof id);
    if (id == 2) {
      std::memcpy(&pods_offset, bytes.data() + 64 + 24 * k + 8,
                  sizeof pods_offset);
    }
  }
  ASSERT_NE(pods_offset, 0u);
  const std::uint32_t huge = 0xffffffffu;
  std::memcpy(bytes.data() + pods_offset + 40 + 4, &huge, sizeof huge);
  spit(path, bytes);

  const MappedDataset mapped(path);
  EXPECT_THROW(mapped.to_dataset(), std::runtime_error);
}

TEST(MappedDataset, LoadOrGeneratePrefersSnapshot) {
  const Dataset original = sample_dataset(DatasetStyle::Pb10);
  const std::string path = tmp_path("cache.ds");
  std::remove(path.c_str());
  std::remove(mmap_sibling_path(path).c_str());

  int calls = 0;
  auto generate = [&] {
    ++calls;
    return sample_dataset(DatasetStyle::Pb10);
  };
  const Dataset first = load_or_generate(path, generate);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(canonical_bytes(first), canonical_bytes(original));

  // Second call must hit the snapshot: generate() not called again, and
  // even a deleted stream file does not force regeneration.
  std::remove(path.c_str());
  const Dataset second = load_or_generate(path, generate);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(canonical_bytes(second), canonical_bytes(original));
}

/// Compares the full identity analysis built from a Dataset vs the one
/// built span-natively from a view of the same data.
void expect_same_analysis(const IdentityAnalysis& a, const IdentityAnalysis& b) {
  ASSERT_EQ(a.usernames().size(), b.usernames().size());
  for (std::size_t i = 0; i < a.usernames().size(); ++i) {
    const UsernameStats& x = a.usernames()[i];
    const UsernameStats& y = b.usernames()[i];
    EXPECT_EQ(x.username, y.username);
    EXPECT_EQ(x.torrents, y.torrents);
    EXPECT_EQ(x.content_count, y.content_count);
    EXPECT_EQ(x.download_count, y.download_count);
    EXPECT_EQ(x.ips, y.ips);
    EXPECT_EQ(x.banned, y.banned);
  }
  ASSERT_EQ(a.ips().size(), b.ips().size());
  for (std::size_t i = 0; i < a.ips().size(); ++i) {
    EXPECT_EQ(a.ips()[i].ip, b.ips()[i].ip);
    EXPECT_EQ(a.ips()[i].usernames, b.ips()[i].usernames);
    EXPECT_EQ(a.ips()[i].banned_usernames, b.ips()[i].banned_usernames);
  }
  EXPECT_EQ(a.fake_usernames(), b.fake_usernames());
  EXPECT_EQ(a.top(), b.top());
  EXPECT_EQ(a.top_hp(), b.top_hp());
  EXPECT_EQ(a.top_ci(), b.top_ci());
  EXPECT_EQ(a.total_content(), b.total_content());
  EXPECT_EQ(a.total_downloads(), b.total_downloads());
}

TEST(IdentityAnalysis, ViewPathMatchesDatasetPath) {
  const Dataset dataset = sample_dataset(DatasetStyle::Pb10);
  GeoDb geo;
  const IspId host = geo.add_isp("HostCo", IspType::HostingProvider, "FR");
  geo.add_block(CidrBlock(IpAddress(10, 0, 0, 0), 8), host, "Paris");

  const IdentityAnalysis from_dataset(dataset, geo, 10);
  const CompactDataset compact = compact_dataset(dataset);
  const IdentityAnalysis from_view(compact.view(), geo, 10);
  expect_same_analysis(from_dataset, from_view);

  // And from the mmap-ed snapshot, with no inflation at all.
  const std::string path = tmp_path("identity.mmap");
  save_mmap_snapshot(dataset, path);
  const MappedDataset mapped(path);
  const IdentityAnalysis from_mmap(mapped.view(), geo, 10);
  expect_same_analysis(from_dataset, from_mmap);
}

TEST(Classify, IdenticalOnReloadedDatasets) {
  const Dataset original = sample_dataset(DatasetStyle::Pb10);
  GeoDb geo;
  const IspId host = geo.add_isp("HostCo", IspType::HostingProvider, "FR");
  geo.add_block(CidrBlock(IpAddress(10, 0, 0, 0), 8), host, "Paris");
  WebsiteDirectory websites;

  const std::string path = tmp_path("classify.ds");
  save_dataset(original, path);
  save_mmap_snapshot(original, mmap_sibling_path(path));
  const Dataset via_stream = load_dataset(path);
  const Dataset via_mmap = MappedDataset(mmap_sibling_path(path)).to_dataset();

  auto classify = [&](const Dataset& d) {
    const IdentityAnalysis identity(d, geo, 10);
    Rng rng(1234);
    return classify_top_publishers(d, identity, websites, 3, rng);
  };
  const ClassificationResult a = classify(original);
  const ClassificationResult b = classify(via_stream);
  const ClassificationResult c = classify(via_mmap);

  auto expect_same = [](const ClassificationResult& x,
                        const ClassificationResult& y) {
    ASSERT_EQ(x.profiles.size(), y.profiles.size());
    for (std::size_t i = 0; i < x.profiles.size(); ++i) {
      EXPECT_EQ(x.profiles[i].username, y.profiles[i].username);
      EXPECT_EQ(x.profiles[i].cls, y.profiles[i].cls);
      EXPECT_EQ(x.profiles[i].domain, y.profiles[i].domain);
      EXPECT_EQ(x.profiles[i].content_count, y.profiles[i].content_count);
      EXPECT_EQ(x.profiles[i].download_count, y.profiles[i].download_count);
    }
  };
  expect_same(a, b);
  expect_same(a, c);
}

}  // namespace
}  // namespace btpub
