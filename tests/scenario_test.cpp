// Scenario presets: every preset must be internally consistent and match
// the dataset style it claims to emulate.
#include "core/scenario.hpp"

#include <gtest/gtest.h>

namespace btpub {
namespace {

TEST(Scenarios, Pb10Preset) {
  const ScenarioConfig config = ScenarioConfig::pb10(7);
  EXPECT_EQ(config.name, "pb10");
  EXPECT_EQ(config.seed, 7u);
  EXPECT_EQ(config.crawler.style, DatasetStyle::Pb10);
  EXPECT_EQ(config.window, days(30));
}

TEST(Scenarios, Pb09IsSingleQueryStyle) {
  const ScenarioConfig config = ScenarioConfig::pb09();
  EXPECT_EQ(config.crawler.style, DatasetStyle::Pb09);
  EXPECT_EQ(config.window, days(21));
}

TEST(Scenarios, Mn08HasNoUsernames) {
  const ScenarioConfig config = ScenarioConfig::mn08();
  EXPECT_EQ(config.crawler.style, DatasetStyle::Mn08);
  EXPECT_EQ(config.window, days(39));
}

TEST(Scenarios, SignatureRunsAtFullRate) {
  const ScenarioConfig config = ScenarioConfig::signature();
  EXPECT_DOUBLE_EQ(config.population.rate_scale, 1.0);
  // Head-count is reduced to keep the run laptop-sized.
  EXPECT_LT(config.population.portal_owners,
            ScenarioConfig::pb10().population.portal_owners);
  EXPECT_LT(config.window, ScenarioConfig::pb10().window);
}

TEST(Scenarios, QuickIsSmall) {
  const ScenarioConfig config = ScenarioConfig::quick();
  EXPECT_LE(config.population.regular_publishers, 1000u);
  EXPECT_LE(config.window, days(7));
}

TEST(Scenarios, AllPresetsHaveSaneModelParameters) {
  for (const ScenarioConfig& config :
       {ScenarioConfig::pb10(), ScenarioConfig::pb09(), ScenarioConfig::mn08(),
        ScenarioConfig::signature(), ScenarioConfig::quick()}) {
    EXPECT_GT(config.window, 0) << config.name;
    EXPECT_GT(config.decay_tau, 0) << config.name;
    EXPECT_GT(config.fake_decay_tau, 0) << config.name;
    EXPECT_GE(config.downloader_nat_fraction, 0.0) << config.name;
    EXPECT_LE(config.downloader_nat_fraction, 1.0) << config.name;
    EXPECT_GE(config.abort_probability, 0.0) << config.name;
    EXPECT_LE(config.abort_probability, 1.0) << config.name;
    EXPECT_GT(config.moderation_mean_delay, config.moderation_min_delay)
        << config.name;
    EXPECT_GT(config.population.fake_farms, 0u) << config.name;
    EXPECT_GE(config.cross_post_lead_max, config.cross_post_lead_min)
        << config.name;
    EXPECT_GT(config.tracker.max_numwant, 0u) << config.name;
    EXPECT_GT(config.crawler.empty_replies_to_stop, 0u) << config.name;
  }
}

TEST(Scenarios, SeedFlowsThroughPresets) {
  EXPECT_EQ(ScenarioConfig::pb10(123).seed, 123u);
  EXPECT_EQ(ScenarioConfig::signature(9).seed, 9u);
  EXPECT_EQ(ScenarioConfig::quick(77).seed, 77u);
}

}  // namespace
}  // namespace btpub
