// IPv4 value types and compact peer-list encoding.
#include <gtest/gtest.h>

#include "net/compact.hpp"
#include "net/ip.hpp"

namespace btpub {
namespace {

TEST(IpAddress, FormatAndValue) {
  const IpAddress ip(192, 168, 1, 42);
  EXPECT_EQ(ip.to_string(), "192.168.1.42");
  EXPECT_EQ(ip.value(), 0xC0A8012Au);
  EXPECT_EQ(IpAddress(0x01020304u).to_string(), "1.2.3.4");
}

TEST(IpAddress, ParseValid) {
  const auto ip = IpAddress::parse("10.0.255.7");
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(*ip, IpAddress(10, 0, 255, 7));
  EXPECT_EQ(IpAddress::parse("0.0.0.0")->value(), 0u);
  EXPECT_EQ(IpAddress::parse("255.255.255.255")->value(), 0xFFFFFFFFu);
}

class BadIpParse : public ::testing::TestWithParam<const char*> {};

TEST_P(BadIpParse, Rejected) {
  EXPECT_FALSE(IpAddress::parse(GetParam()).has_value()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Malformed, BadIpParse,
                         ::testing::Values("", "1.2.3", "1.2.3.4.5", "256.1.1.1",
                                           "1.2.3.x", "a.b.c.d", "1..2.3",
                                           "1.2.3.1234", " 1.2.3.4"));

TEST(IpAddress, Ordering) {
  EXPECT_LT(IpAddress(1, 0, 0, 0), IpAddress(2, 0, 0, 0));
  EXPECT_EQ(IpAddress(9, 9, 9, 9), IpAddress(9, 9, 9, 9));
}

TEST(Prefix16, ExtractionAndFormat) {
  const Prefix16 p(IpAddress(81, 93, 17, 200));
  EXPECT_EQ(p.value(), (81u << 8) | 93u);
  EXPECT_EQ(p.to_string(), "81.93.0.0/16");
  EXPECT_EQ(Prefix16(IpAddress(81, 93, 0, 1)), p);
  EXPECT_NE(Prefix16(IpAddress(81, 94, 0, 1)), p);
}

TEST(CidrBlock, MasksBase) {
  const CidrBlock block(IpAddress(10, 1, 2, 3), 16);
  EXPECT_EQ(block.base().to_string(), "10.1.0.0");
  EXPECT_EQ(block.to_string(), "10.1.0.0/16");
  EXPECT_EQ(block.size(), 65536u);
}

TEST(CidrBlock, ContainsAndAt) {
  const CidrBlock block(IpAddress(10, 1, 0, 0), 24);
  EXPECT_TRUE(block.contains(IpAddress(10, 1, 0, 255)));
  EXPECT_FALSE(block.contains(IpAddress(10, 1, 1, 0)));
  EXPECT_EQ(block.at(7), IpAddress(10, 1, 0, 7));
  EXPECT_EQ(block.size(), 256u);
}

TEST(CidrBlock, ExtremeLengths) {
  const CidrBlock all(IpAddress(1, 2, 3, 4), 0);
  EXPECT_TRUE(all.contains(IpAddress(250, 250, 250, 250)));
  EXPECT_EQ(all.size(), 1ull << 32);
  const CidrBlock host(IpAddress(1, 2, 3, 4), 32);
  EXPECT_TRUE(host.contains(IpAddress(1, 2, 3, 4)));
  EXPECT_FALSE(host.contains(IpAddress(1, 2, 3, 5)));
  EXPECT_EQ(host.size(), 1u);
}

TEST(CidrBlock, ParseValidAndInvalid) {
  const auto block = CidrBlock::parse("172.16.0.0/12");
  ASSERT_TRUE(block.has_value());
  EXPECT_EQ(block->length(), 12);
  EXPECT_TRUE(block->contains(IpAddress(172, 31, 255, 255)));
  EXPECT_FALSE(CidrBlock::parse("172.16.0.0").has_value());
  EXPECT_FALSE(CidrBlock::parse("172.16.0.0/33").has_value());
  EXPECT_FALSE(CidrBlock::parse("172.16.0.0/-1").has_value());
  EXPECT_FALSE(CidrBlock::parse("x/8").has_value());
  EXPECT_FALSE(CidrBlock::parse("1.2.3.4/1x").has_value());
}

TEST(EndpointTest, FormatAndHash) {
  const Endpoint e{IpAddress(1, 2, 3, 4), 6881};
  EXPECT_EQ(e.to_string(), "1.2.3.4:6881");
  const Endpoint same{IpAddress(1, 2, 3, 4), 6881};
  const Endpoint other{IpAddress(1, 2, 3, 4), 6882};
  EXPECT_EQ(std::hash<Endpoint>{}(e), std::hash<Endpoint>{}(same));
  EXPECT_EQ(e, same);
  EXPECT_NE(e, other);
}

TEST(CompactPeers, RoundTrip) {
  std::vector<Endpoint> peers{
      {IpAddress(1, 2, 3, 4), 6881},
      {IpAddress(255, 254, 253, 252), 65535},
      {IpAddress(0, 0, 0, 1), 1},
  };
  const std::string wire = encode_compact_peers(peers);
  EXPECT_EQ(wire.size(), 18u);
  const auto decoded = decode_compact_peers(wire);
  EXPECT_EQ(decoded, peers);
}

TEST(CompactPeers, EmptyList) {
  EXPECT_EQ(encode_compact_peers({}), "");
  EXPECT_TRUE(decode_compact_peers("").empty());
}

TEST(CompactPeers, RejectsBadLength) {
  EXPECT_THROW(decode_compact_peers("12345"), std::invalid_argument);
  EXPECT_THROW(decode_compact_peers("1234567"), std::invalid_argument);
}

TEST(CompactPeers, BigEndianLayout) {
  const std::vector<Endpoint> one{{IpAddress(0x01, 0x02, 0x03, 0x04), 0x1A2B}};
  const std::string wire = encode_compact_peers(one);
  EXPECT_EQ(static_cast<unsigned char>(wire[0]), 0x01);
  EXPECT_EQ(static_cast<unsigned char>(wire[3]), 0x04);
  EXPECT_EQ(static_cast<unsigned char>(wire[4]), 0x1A);
  EXPECT_EQ(static_cast<unsigned char>(wire[5]), 0x2B);
}

}  // namespace
}  // namespace btpub
