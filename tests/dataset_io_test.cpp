// Dataset binary persistence round trips.
#include "crawler/dataset_io.hpp"

#include <gtest/gtest.h>

#include "crawler/dataset_mmap.hpp"

#include <fstream>
#include <sstream>

namespace btpub {
namespace {

Dataset sample_dataset() {
  Dataset d;
  d.name = "pb10";
  d.style = DatasetStyle::Pb10;
  d.window_start = 0;
  d.window_end = days(30);

  TorrentRecord r;
  r.portal_id = 7;
  r.infohash = Sha1::hash("t7");
  r.title = "Dark.Horizon.2010.DVDRip-divxatope.com";
  r.category = ContentCategory::Movies;
  r.language = Language::Spanish;
  r.size_bytes = 734003200;
  r.username = "mois20";
  r.publisher_ip = IpAddress(81, 93, 5, 7);
  r.published_at = hours(5);
  r.first_seen = hours(5) + minutes(4);
  r.textbox = "Visit http://www.divxatope.com/ !";
  r.payload_filenames = {"film.avi", "Visit-www-divxatope-com.txt"};
  r.piece_count = 2800;
  r.observed_removed = true;
  r.observed_removed_at = hours(30);
  r.initial_seeders = 1;
  r.initial_peers = 4;
  r.query_count = 120;
  r.max_concurrent = 55;
  d.torrents.push_back(r);
  d.downloaders.push_back({IpAddress(1, 2, 3, 4), IpAddress(5, 6, 7, 8)});
  d.publisher_sightings.push_back({hours(5), hours(6), hours(9)});

  TorrentRecord r2;
  r2.portal_id = 9;
  r2.title = "plain";
  r2.username = "bob";
  d.torrents.push_back(r2);
  d.downloaders.emplace_back();
  d.publisher_sightings.emplace_back();

  UserPage page;
  page.username = "mois20";
  page.banned = false;
  page.publish_times = {-days(100), hours(5)};
  d.user_pages.emplace("mois20", page);
  return d;
}

TEST(DatasetIo, StreamRoundTrip) {
  const Dataset original = sample_dataset();
  std::stringstream buffer;
  save_dataset(original, buffer);
  const Dataset loaded = load_dataset(buffer);

  EXPECT_EQ(loaded.name, original.name);
  EXPECT_EQ(loaded.style, original.style);
  EXPECT_EQ(loaded.window_end, original.window_end);
  ASSERT_EQ(loaded.torrents.size(), 2u);

  const TorrentRecord& a = loaded.torrents[0];
  const TorrentRecord& b = original.torrents[0];
  EXPECT_EQ(a.portal_id, b.portal_id);
  EXPECT_EQ(a.infohash, b.infohash);
  EXPECT_EQ(a.title, b.title);
  EXPECT_EQ(a.category, b.category);
  EXPECT_EQ(a.language, b.language);
  EXPECT_EQ(a.size_bytes, b.size_bytes);
  EXPECT_EQ(a.username, b.username);
  EXPECT_EQ(a.publisher_ip, b.publisher_ip);
  EXPECT_EQ(a.textbox, b.textbox);
  EXPECT_EQ(a.payload_filenames, b.payload_filenames);
  EXPECT_EQ(a.piece_count, b.piece_count);
  EXPECT_EQ(a.observed_removed, b.observed_removed);
  EXPECT_EQ(a.observed_removed_at, b.observed_removed_at);
  EXPECT_EQ(a.query_count, b.query_count);
  EXPECT_FALSE(loaded.torrents[1].publisher_ip.has_value());

  EXPECT_EQ(loaded.downloaders[0], original.downloaders[0]);
  EXPECT_EQ(loaded.publisher_sightings[0], original.publisher_sightings[0]);
  ASSERT_TRUE(loaded.user_pages.contains("mois20"));
  EXPECT_EQ(loaded.user_pages.at("mois20").publish_times,
            original.user_pages.at("mois20").publish_times);
}

TEST(DatasetIo, FileRoundTrip) {
  const std::string path = "/tmp/btpub_dataset_io_test.ds";
  const Dataset original = sample_dataset();
  save_dataset(original, path);
  const Dataset loaded = load_dataset(path);
  EXPECT_EQ(loaded.torrents.size(), original.torrents.size());
  EXPECT_EQ(loaded.distinct_ips_global(), original.distinct_ips_global());
  std::remove(path.c_str());
}

TEST(DatasetIo, RejectsBadMagicAndTruncation) {
  std::stringstream bad("not a dataset at all");
  EXPECT_THROW(load_dataset(bad), std::runtime_error);

  std::stringstream buffer;
  save_dataset(sample_dataset(), buffer);
  const std::string bytes = buffer.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
  EXPECT_THROW(load_dataset(truncated), std::runtime_error);
}

TEST(DatasetIo, LoadOrGenerateCachesAndReloads) {
  const std::string path = "/tmp/btpub_dataset_io_cache_test.ds";
  std::remove(path.c_str());
  std::remove(mmap_sibling_path(path).c_str());
  int generated = 0;
  auto generate = [&generated]() {
    ++generated;
    return sample_dataset();
  };
  const Dataset first = load_or_generate(path, generate);
  EXPECT_EQ(generated, 1);
  const Dataset second = load_or_generate(path, generate);
  EXPECT_EQ(generated, 1);  // served from cache
  EXPECT_EQ(second.torrents.size(), first.torrents.size());
  std::remove(path.c_str());
  std::remove(mmap_sibling_path(path).c_str());
}

TEST(DatasetIo, CorruptCacheRegenerates) {
  const std::string path = "/tmp/btpub_dataset_io_corrupt_test.ds";
  std::remove(mmap_sibling_path(path).c_str());
  {
    std::ofstream out(path, std::ios::binary);
    out << "garbage";
  }
  int generated = 0;
  const Dataset d = load_or_generate(path, [&generated]() {
    ++generated;
    return sample_dataset();
  });
  EXPECT_EQ(generated, 1);
  EXPECT_EQ(d.torrents.size(), 2u);
  std::remove(path.c_str());
  std::remove(mmap_sibling_path(path).c_str());
}

}  // namespace
}  // namespace btpub
