// Tests for string helpers and simulated-time utilities.
#include <gtest/gtest.h>

#include "util/strings.hpp"
#include "util/time.hpp"

namespace btpub {
namespace {

TEST(Split, Basic) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, PreservesEmptyFields) {
  const auto parts = split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Split, NoSeparator) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(SplitViews, MatchesSplitSemantics) {
  for (const char* input : {"a,b,c", "a,,c,", "abc", "", ",", ",,"}) {
    const auto strings = split(input, ',');
    const auto views = split_views(input, ',');
    ASSERT_EQ(strings.size(), views.size()) << input;
    for (std::size_t i = 0; i < strings.size(); ++i) {
      EXPECT_EQ(strings[i], views[i]) << input;
    }
  }
}

TEST(SplitViews, ViewsAliasTheInputBuffer) {
  const std::string backing = "key=value&key2=value2";
  const auto views = split_views(backing, '&');
  ASSERT_EQ(views.size(), 2u);
  EXPECT_EQ(views[0].data(), backing.data());  // no copy, just a window
  EXPECT_EQ(views[1], "key2=value2");
}

TEST(SplitViews, ReusedVectorIsClearedFirst) {
  std::vector<std::string_view> out;
  split_views("a,b,c", ',', out);
  ASSERT_EQ(out.size(), 3u);
  split_views("x", ',', out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], "x");
}

TEST(UrlUnescapeInto, DecodesWithinCapacity) {
  char buf[20];
  const auto n = url_unescape_into("abc%20def", buf, sizeof buf);
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(std::string_view(buf, *n), "abc def");
}

TEST(UrlUnescapeInto, RejectsMalformedAndOverflow) {
  char buf[4];
  EXPECT_FALSE(url_unescape_into("%", buf, sizeof buf).has_value());
  EXPECT_FALSE(url_unescape_into("%f", buf, sizeof buf).has_value());
  EXPECT_FALSE(url_unescape_into("%zz", buf, sizeof buf).has_value());
  EXPECT_FALSE(url_unescape_into("12345", buf, sizeof buf).has_value());
  EXPECT_TRUE(url_unescape_into("%31%32%33%34", buf, sizeof buf).has_value());
}

TEST(Join, RoundTripsSplit) {
  const std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(join(parts, "/"), "x/y/z");
  EXPECT_EQ(join({}, "/"), "");
  EXPECT_EQ(join({"solo"}, "/"), "solo");
}

TEST(Case, ToLowerAndContains) {
  EXPECT_EQ(to_lower("MiXeD"), "mixed");
  EXPECT_TRUE(contains_icase("The DARK Horizon", "dark"));
  EXPECT_TRUE(contains_icase("abc", ""));
  EXPECT_FALSE(contains_icase("abc", "xyz"));
}

TEST(Affixes, StartsEndsWith) {
  EXPECT_TRUE(starts_with("divxatope.com", "divx"));
  EXPECT_FALSE(starts_with("a", "ab"));
  EXPECT_TRUE(ends_with("file-site.com", ".com"));
  EXPECT_FALSE(ends_with(".com", "site.com"));
}

TEST(Trim, Whitespace) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(FormatDouble, Decimals) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-1.0, 0), "-1");
}

TEST(Humanize, Magnitudes) {
  EXPECT_EQ(humanize(950.0), "950");
  EXPECT_EQ(humanize(33000.0), "33K");
  EXPECT_EQ(humanize(2800000.0), "2.8M");
  EXPECT_EQ(humanize(1.4e9), "1.4B");
}

TEST(Percent, Rendering) {
  EXPECT_EQ(percent(0.301), "30.1%");
  EXPECT_EQ(percent(1.0, 0), "100%");
}

TEST(SimTimeUnits, Conversions) {
  EXPECT_EQ(minutes(2.0), 120);
  EXPECT_EQ(hours(1.5), 5400);
  EXPECT_EQ(days(2.0), 172800);
  EXPECT_DOUBLE_EQ(to_minutes(90), 1.5);
  EXPECT_DOUBLE_EQ(to_hours(5400), 1.5);
  EXPECT_DOUBLE_EQ(to_days(86400), 1.0);
}

TEST(FormatDuration, Rendering) {
  EXPECT_EQ(format_duration(0), "00:00:00");
  EXPECT_EQ(format_duration(hours(1) + minutes(2) + 3), "01:02:03");
  EXPECT_EQ(format_duration(days(3) + hours(4) + minutes(5) + 9),
            "3d 04:05:09");
  EXPECT_EQ(format_duration(-hours(2)), "-02:00:00");
}

TEST(IntervalOps, ContainsAndOverlaps) {
  const Interval a{10, 20};
  EXPECT_EQ(a.length(), 10);
  EXPECT_TRUE(a.contains(10));
  EXPECT_TRUE(a.contains(19));
  EXPECT_FALSE(a.contains(20));  // half-open
  EXPECT_FALSE(a.contains(9));
  const Interval b{19, 25};
  const Interval c{20, 25};
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_FALSE(a.overlaps(c));  // touching is not overlapping
  EXPECT_TRUE(b.overlaps(a));
}

}  // namespace
}  // namespace btpub
