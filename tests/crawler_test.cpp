// Crawler methodology tests over a hand-built miniature ecosystem.
#include "crawler/crawler.hpp"

#include <gtest/gtest.h>

#include "torrent/metainfo.hpp"

namespace btpub {
namespace {

constexpr std::uint32_t kPublisherIp = 0x0B000001;  // 11.0.0.1

class CrawlerTest : public ::testing::Test {
 protected:
  CrawlerTest()
      : portal_("mini"), tracker_(TrackerConfig{}, Rng(3)) {
    const IspId isp = geo_.add_isp("MiniNet", IspType::HostingProvider, "FR");
    geo_.add_block(CidrBlock(IpAddress(11, 0, 0, 0), 8), isp, "Paris");
  }

  /// Publishes a torrent and builds its swarm. Returns the portal id.
  TorrentId add_torrent(const std::string& title, bool publisher_nat,
                        std::size_t extra_leechers, std::size_t extra_seeders,
                        SimTime publish_at, SimDuration publisher_stay) {
    Metainfo metainfo = Metainfo::make(tracker_.announce_url(), title,
                                       {{title + ".avi", 5 << 20}}, 256 * 1024,
                                       title);
    PublishRequest request;
    request.title = title;
    request.category = ContentCategory::Movies;
    request.username = "user_" + title;
    request.textbox = "Visit http://www.example.com/ now";
    request.torrent_bytes = metainfo.encode();
    request.infohash = metainfo.infohash();
    request.size_bytes = metainfo.total_size();
    const TorrentId id = portal_.publish(std::move(request), publish_at);

    auto swarm = std::make_unique<Swarm>(metainfo.infohash(),
                                         metainfo.piece_count(), publish_at);
    PeerSession publisher;
    publisher.endpoint = Endpoint{IpAddress(kPublisherIp + id * 256), 6881};
    publisher.arrive = publish_at;
    publisher.depart = publish_at + publisher_stay;
    publisher.complete_at = publish_at;
    publisher.nat = publisher_nat;
    publisher.is_publisher = true;
    swarm->add_session(publisher);
    for (std::size_t i = 0; i < extra_leechers; ++i) {
      PeerSession s;
      s.endpoint = Endpoint{IpAddress(0x0B010000 + id * 4096 +
                                      static_cast<std::uint32_t>(i)),
                            20000};
      s.arrive = publish_at;
      s.depart = publish_at + hours(6);
      swarm->add_session(s);
    }
    for (std::size_t i = 0; i < extra_seeders; ++i) {
      PeerSession s;
      s.endpoint = Endpoint{IpAddress(0x0B020000 + id * 4096 +
                                      static_cast<std::uint32_t>(i)),
                            20000};
      s.arrive = publish_at;
      s.depart = publish_at + hours(6);
      s.complete_at = publish_at;
      swarm->add_session(s);
    }
    swarm->finalize();
    tracker_.host_swarm(*swarm);
    network_.register_swarm(*swarm);
    swarms_.push_back(std::move(swarm));
    return id;
  }

  Crawler make_crawler(CrawlerConfig config = {}) {
    return Crawler(portal_, tracker_, network_, geo_, config, 9);
  }

  GeoDb geo_;
  Portal portal_;
  Tracker tracker_;
  SwarmNetwork network_;
  std::vector<std::unique_ptr<Swarm>> swarms_;
};

TEST_F(CrawlerTest, DiscoverIdentifiesInitialSeeder) {
  const TorrentId id = add_torrent("alpha", false, 3, 0, 100, hours(5));
  Crawler crawler = make_crawler();
  std::vector<IpAddress> ips;
  std::vector<SimTime> sightings;
  const auto record = crawler.discover(id, 200, ips, sightings);
  ASSERT_TRUE(record.has_value());
  ASSERT_TRUE(record->publisher_ip.has_value());
  EXPECT_EQ(*record->publisher_ip, IpAddress(kPublisherIp + id * 256));
  EXPECT_EQ(record->initial_seeders, 1u);
  EXPECT_EQ(record->initial_peers, 4u);
  EXPECT_EQ(record->username, "user_alpha");
  EXPECT_EQ(record->title, "alpha");
  EXPECT_GT(record->piece_count, 0u);
  EXPECT_EQ(ips.size(), 3u);  // leechers only; publisher excluded
}

TEST_F(CrawlerTest, NatPublisherNotIdentified) {
  const TorrentId id = add_torrent("natted", true, 3, 0, 100, hours(5));
  Crawler crawler = make_crawler();
  std::vector<IpAddress> ips;
  std::vector<SimTime> sightings;
  const auto record = crawler.discover(id, 200, ips, sightings);
  ASSERT_TRUE(record.has_value());
  EXPECT_FALSE(record->publisher_ip.has_value());
  // The unidentifiable publisher is indistinguishable from a downloader.
  EXPECT_EQ(ips.size(), 4u);
}

TEST_F(CrawlerTest, CrowdedSwarmBlocksIdentification) {
  const TorrentId id = add_torrent("crowded", false, 30, 0, 100, hours(5));
  Crawler crawler = make_crawler();
  std::vector<IpAddress> ips;
  std::vector<SimTime> sightings;
  const auto record = crawler.discover(id, 200, ips, sightings);
  ASSERT_TRUE(record.has_value());
  EXPECT_FALSE(record->publisher_ip.has_value());
  EXPECT_EQ(record->initial_peers, 31u);
}

TEST_F(CrawlerTest, SecondSeederBlocksIdentification) {
  const TorrentId id = add_torrent("preseeded", false, 3, 1, 100, hours(5));
  Crawler crawler = make_crawler();
  std::vector<IpAddress> ips;
  std::vector<SimTime> sightings;
  const auto record = crawler.discover(id, 200, ips, sightings);
  ASSERT_TRUE(record.has_value());
  EXPECT_FALSE(record->publisher_ip.has_value());
  EXPECT_EQ(record->initial_seeders, 2u);
}

TEST_F(CrawlerTest, RemovedContentYieldsNothing) {
  const TorrentId id = add_torrent("pulled", false, 2, 0, 100, hours(5));
  portal_.moderate_remove(id, 150);
  Crawler crawler = make_crawler();
  std::vector<IpAddress> ips;
  std::vector<SimTime> sightings;
  EXPECT_FALSE(crawler.discover(id, 200, ips, sightings).has_value());
  // Discovered before removal works fine.
  EXPECT_TRUE(crawler.discover(id, 120, ips, sightings).has_value());
}

TEST_F(CrawlerTest, Mn08StyleOmitsUsername) {
  const TorrentId id = add_torrent("anon", false, 2, 0, 100, hours(5));
  CrawlerConfig config;
  config.style = DatasetStyle::Mn08;
  Crawler crawler = make_crawler(config);
  std::vector<IpAddress> ips;
  std::vector<SimTime> sightings;
  const auto record = crawler.discover(id, 200, ips, sightings);
  ASSERT_TRUE(record.has_value());
  EXPECT_TRUE(record->username.empty());
  EXPECT_TRUE(record->publisher_ip.has_value());  // IP still identified
}

TEST_F(CrawlerTest, TextboxAndPayloadSnapshotsTaken) {
  const TorrentId id = add_torrent("snap", false, 1, 0, 100, hours(5));
  Crawler crawler = make_crawler();
  std::vector<IpAddress> ips;
  std::vector<SimTime> sightings;
  const auto record = crawler.discover(id, 200, ips, sightings);
  ASSERT_TRUE(record.has_value());
  EXPECT_NE(record->textbox.find("http://www.example.com/"), std::string::npos);
  ASSERT_EQ(record->payload_filenames.size(), 1u);
  // BEP 3: a single-file torrent's file name is the info "name" itself.
  EXPECT_EQ(record->payload_filenames[0], "snap");
}

TEST_F(CrawlerTest, CrawlWindowMonitorsAndStops) {
  add_torrent("watched", false, 8, 0, minutes(10), hours(4));
  CrawlerConfig config;
  Crawler crawler = make_crawler(config);
  const Dataset dataset = crawler.crawl_window(0, days(2));
  ASSERT_EQ(dataset.torrent_count(), 1u);
  const TorrentRecord& record = dataset.torrents[0];
  ASSERT_TRUE(record.publisher_ip.has_value());
  // The publisher was sighted repeatedly while it seeded...
  EXPECT_GE(dataset.publisher_sightings[0].size(), 5u);
  // ...and monitoring stopped shortly after the swarm died instead of
  // running to the horizon: ~6h of life at >=10-minute gaps plus ten empty
  // replies is far less than 2 days of polling.
  EXPECT_LT(record.query_count, 70u);
  EXPECT_GE(record.query_count, 25u);
  EXPECT_EQ(dataset.downloaders[0].size(), 8u);
  EXPECT_EQ(dataset.with_username(), 1u);
  EXPECT_EQ(dataset.with_publisher_ip(), 1u);
}

TEST_F(CrawlerTest, Pb09StyleQueriesOnlyOnce) {
  add_torrent("oneshot", false, 5, 0, minutes(10), hours(4));
  CrawlerConfig config;
  config.style = DatasetStyle::Pb09;
  Crawler crawler = make_crawler(config);
  const Dataset dataset = crawler.crawl_window(0, days(2));
  ASSERT_EQ(dataset.torrent_count(), 1u);
  EXPECT_EQ(dataset.torrents[0].query_count, 1u);
}

TEST_F(CrawlerTest, CrawlWindowSkipsOutOfWindowTorrents) {
  add_torrent("early", false, 2, 0, 50, hours(2));
  Crawler crawler = make_crawler();
  const Dataset dataset = crawler.crawl_window(days(1), days(2));
  EXPECT_EQ(dataset.torrent_count(), 0u);
}

TEST_F(CrawlerTest, ModerationObservedDuringMonitoring) {
  const TorrentId id = add_torrent("takedown", false, 6, 0, minutes(10), days(1));
  portal_.moderate_remove(id, hours(13));
  CrawlerConfig config;
  config.page_recheck = hours(1);
  Crawler crawler = make_crawler(config);
  const Dataset dataset = crawler.crawl_window(0, days(2));
  ASSERT_EQ(dataset.torrent_count(), 1u);
  EXPECT_TRUE(dataset.torrents[0].observed_removed);
  EXPECT_GE(dataset.torrents[0].observed_removed_at, hours(13));
}

TEST_F(CrawlerTest, UserPagesSnapshotIncludesBanState) {
  const TorrentId id = add_torrent("banned", false, 4, 0, minutes(10), hours(3));
  portal_.moderate_remove(id, hours(20));
  Crawler crawler = make_crawler();
  const Dataset dataset = crawler.crawl_window(0, days(1));
  ASSERT_EQ(dataset.torrent_count(), 1u);
  const auto it = dataset.user_pages.find("user_banned");
  ASSERT_NE(it, dataset.user_pages.end());
  EXPECT_TRUE(it->second.banned);
  EXPECT_EQ(it->second.publish_times.size(), 1u);
}

TEST_F(CrawlerTest, DeterministicAcrossRuns) {
  add_torrent("det", false, 10, 0, minutes(10), hours(4));
  tracker_.reset_state(3);
  const Dataset a = make_crawler().crawl_window(0, days(1));
  tracker_.reset_state(3);  // identical tracker state for the replay
  const Dataset b = make_crawler().crawl_window(0, days(1));
  ASSERT_EQ(a.torrent_count(), b.torrent_count());
  EXPECT_EQ(a.torrents[0].query_count, b.torrents[0].query_count);
  EXPECT_EQ(a.downloaders[0].size(), b.downloaders[0].size());
  EXPECT_EQ(a.publisher_sightings[0], b.publisher_sightings[0]);
}

}  // namespace
}  // namespace btpub
