// Population builder: counts, identities, IP allocation, websites.
#include "publisher/population.hpp"

#include <gtest/gtest.h>

#include <set>

namespace btpub {
namespace {

class PopulationTest : public ::testing::Test {
 protected:
  PopulationTest() : catalog_(IspCatalog::standard()) {
    config_.regular_publishers = 200;
    config_.portal_owners = 12;
    config_.other_web = 10;
    config_.top_altruistic = 14;
    config_.fake_farms = 8;
    config_.fake_usernames = 60;
    config_.compromised_usernames = 5;
    Rng rng(42);
    population_ = build_population(config_, catalog_, rng);
  }

  PopulationConfig config_;
  IspCatalog catalog_;
  Population population_;
};

TEST_F(PopulationTest, ClassCountsMatchConfig) {
  EXPECT_EQ(population_.ids_of(PublisherClass::Regular).size(), 200u);
  EXPECT_EQ(population_.ids_of(PublisherClass::TopPortalOwner).size(), 12u);
  EXPECT_EQ(population_.ids_of(PublisherClass::TopOtherWeb).size(), 10u);
  EXPECT_EQ(population_.ids_of(PublisherClass::TopAltruistic).size(), 14u);
  EXPECT_EQ(population_.ids_of(PublisherClass::FakeAntipiracy).size() +
                population_.ids_of(PublisherClass::FakeMalware).size(),
            8u);
  EXPECT_EQ(population_.publishers.size(), 200u + 12 + 10 + 14 + 8);
}

TEST_F(PopulationTest, UsernamesGloballyUnique) {
  std::set<std::string> all;
  std::size_t total = 0;
  for (const Publisher& p : population_.publishers) {
    for (const std::string& name : p.usernames) {
      all.insert(name);
      ++total;
    }
  }
  EXPECT_EQ(all.size(), total);
}

TEST_F(PopulationTest, OwnershipIndexComplete) {
  for (const Publisher& p : population_.publishers) {
    for (const std::string& name : p.usernames) {
      const auto it = population_.owner_of_username.find(name);
      ASSERT_NE(it, population_.owner_of_username.end()) << name;
      EXPECT_EQ(it->second, p.id);
    }
  }
}

TEST_F(PopulationTest, FakeFarmsShareThrowawayPool) {
  std::size_t throwaways = 0;
  std::size_t compromised = 0;
  for (const Publisher& p : population_.publishers) {
    if (!p.is_fake_farm()) continue;
    EXPECT_EQ(p.strategy, IpStrategy::FakeFarm);
    EXPECT_TRUE(p.hosted);
    throwaways += p.usernames.size() - (p.has_compromised_username ? 1 : 0);
    compromised += p.has_compromised_username ? 1 : 0;
  }
  EXPECT_EQ(throwaways, config_.fake_usernames);
  EXPECT_EQ(compromised, config_.compromised_usernames);
}

TEST_F(PopulationTest, NonFarmPublishersHaveOneUsername) {
  for (const Publisher& p : population_.publishers) {
    if (!p.is_fake_farm()) {
      EXPECT_EQ(p.usernames.size(), 1u) << to_string(p.cls);
    }
  }
}

TEST_F(PopulationTest, EndpointCountsMatchStrategy) {
  for (const Publisher& p : population_.publishers) {
    ASSERT_FALSE(p.endpoints.empty());
    switch (p.strategy) {
      case IpStrategy::SingleIp:
        EXPECT_EQ(p.endpoints.size(), 1u);
        break;
      case IpStrategy::HostingMulti:
        EXPECT_GE(p.endpoints.size(), 3u);
        EXPECT_LE(p.endpoints.size(), 9u);
        break;
      case IpStrategy::DynamicCommercial:
        EXPECT_GE(p.endpoints.size(), 10u);
        EXPECT_LE(p.endpoints.size(), 18u);
        break;
      case IpStrategy::MultiIsp:
        EXPECT_GE(p.endpoints.size(), 5u);
        EXPECT_LE(p.endpoints.size(), 10u);
        break;
      case IpStrategy::FakeFarm:
        EXPECT_LE(p.endpoints.size(), 3u);
        break;
    }
  }
}

TEST_F(PopulationTest, HostedPublishersLiveAtHostingProviders) {
  for (const Publisher& p : population_.publishers) {
    const auto loc = catalog_.db().lookup(p.endpoints.front().ip);
    ASSERT_TRUE(loc.has_value());
    if (p.hosted) {
      EXPECT_EQ(loc->isp_type, IspType::HostingProvider) << p.primary_isp;
    } else {
      EXPECT_EQ(loc->isp_type, IspType::CommercialIsp) << p.primary_isp;
    }
  }
}

TEST_F(PopulationTest, ProfitDrivenPublishersHaveWebsites) {
  for (const Publisher& p : population_.publishers) {
    if (is_profit_driven(p.cls)) {
      ASSERT_FALSE(p.promo_domain.empty());
      EXPECT_NE(p.promo_channels, PromoChannel::None);
      const Website* site = population_.websites.find(p.promo_domain);
      ASSERT_NE(site, nullptr) << p.promo_domain;
      if (p.cls == PublisherClass::TopPortalOwner) {
        EXPECT_EQ(site->type, BusinessType::PrivateBtPortal);
      } else {
        EXPECT_NE(site->type, BusinessType::PrivateBtPortal);
      }
      EXPECT_GT(site->value_usd, 0.0);
      EXPECT_GT(site->daily_income_usd, 0.0);
      EXPECT_GT(site->daily_visits, 0.0);
    } else {
      EXPECT_TRUE(p.promo_domain.empty()) << to_string(p.cls);
    }
  }
  EXPECT_EQ(population_.websites.size(),
            config_.portal_owners + config_.other_web);
}

TEST_F(PopulationTest, StickyConsumersExcludeHostedAndFakes) {
  std::set<std::uint32_t> sticky_ips;
  for (const auto& [endpoint, weight] : population_.sticky_consumers) {
    sticky_ips.insert(endpoint.ip.value());
  }
  for (const Publisher& p : population_.publishers) {
    if (p.is_fake_farm() || (is_top(p.cls) && p.hosted)) {
      for (const Endpoint& e : p.endpoints) {
        EXPECT_FALSE(sticky_ips.contains(e.ip.value()))
            << to_string(p.cls) << " " << e.to_string();
      }
    }
  }
  // Every regular publisher consumes.
  EXPECT_GE(population_.sticky_consumers.size(), config_.regular_publishers);
}

TEST_F(PopulationTest, RatesAndLifetimesPositive) {
  for (const Publisher& p : population_.publishers) {
    EXPECT_GT(p.window_rate, 0.0);
    EXPECT_GT(p.historical_rate, 0.0);
    EXPECT_GT(p.lifetime_days, 0.0);
    EXPECT_LE(p.lifetime_days, 1900.0);
  }
}

TEST_F(PopulationTest, RateScaleAppliesToTopAndFakeOnly) {
  PopulationConfig scaled = config_;
  scaled.rate_scale = 0.5;
  IspCatalog cat2 = IspCatalog::standard();
  Rng rng(42);
  const Population half = build_population(scaled, cat2, rng);
  for (std::size_t i = 0; i < half.publishers.size(); ++i) {
    const Publisher& p = half.publishers[i];
    if (p.cls == PublisherClass::Regular) {
      EXPECT_DOUBLE_EQ(p.window_rate, p.historical_rate);
    } else {
      EXPECT_NEAR(p.window_rate, p.historical_rate * 0.5, 1e-9);
    }
  }
}

TEST_F(PopulationTest, DeterministicGivenSeed) {
  IspCatalog cat_a = IspCatalog::standard();
  IspCatalog cat_b = IspCatalog::standard();
  Rng rng_a(7), rng_b(7);
  const Population a = build_population(config_, cat_a, rng_a);
  const Population b = build_population(config_, cat_b, rng_b);
  ASSERT_EQ(a.publishers.size(), b.publishers.size());
  for (std::size_t i = 0; i < a.publishers.size(); ++i) {
    EXPECT_EQ(a.publishers[i].usernames, b.publishers[i].usernames);
    EXPECT_EQ(a.publishers[i].endpoints.front(), b.publishers[i].endpoints.front());
    EXPECT_EQ(a.publishers[i].promo_domain, b.publishers[i].promo_domain);
  }
}

TEST_F(PopulationTest, SomePortalOwnersAreLanguageSpecific) {
  std::size_t non_english = 0, spanish = 0, total = 0;
  IspCatalog cat2 = IspCatalog::standard();
  PopulationConfig big = config_;
  big.portal_owners = 200;  // enough for a stable fraction
  Rng rng(11);
  const Population pop = build_population(big, cat2, rng);
  for (const Publisher& p : pop.publishers) {
    if (p.cls != PublisherClass::TopPortalOwner) continue;
    ++total;
    if (p.language != Language::English) ++non_english;
    if (p.language == Language::Spanish) ++spanish;
  }
  // §5.1: ~40% language-specific, ~66% of those Spanish.
  EXPECT_NEAR(non_english / static_cast<double>(total), 0.40, 0.10);
  EXPECT_NEAR(spanish / static_cast<double>(std::max<std::size_t>(non_english, 1)),
              0.66, 0.15);
}

}  // namespace
}  // namespace btpub
