// Class profiles and the title/username/domain generators.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "publisher/names.hpp"
#include "publisher/profile.hpp"
#include "publisher/publisher.hpp"
#include "util/strings.hpp"

namespace btpub {
namespace {

TEST(ClassProfiles, CategoryWeightsNormalised) {
  for (const PublisherClass cls :
       {PublisherClass::Regular, PublisherClass::TopAltruistic,
        PublisherClass::TopPortalOwner, PublisherClass::TopOtherWeb,
        PublisherClass::FakeAntipiracy, PublisherClass::FakeMalware}) {
    const ClassProfile& profile = class_profile(cls);
    const double sum = std::accumulate(profile.category_weights.begin(),
                                       profile.category_weights.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 0.02) << to_string(cls);
    EXPECT_EQ(profile.cls, cls);
    EXPECT_GT(profile.rate_median, 0.0);
    EXPECT_GT(profile.popularity_median, 0.0);
  }
}

TEST(ClassProfiles, ClassPredicates) {
  EXPECT_TRUE(is_fake(PublisherClass::FakeAntipiracy));
  EXPECT_TRUE(is_fake(PublisherClass::FakeMalware));
  EXPECT_FALSE(is_fake(PublisherClass::TopPortalOwner));
  EXPECT_TRUE(is_top(PublisherClass::TopAltruistic));
  EXPECT_FALSE(is_top(PublisherClass::Regular));
  EXPECT_TRUE(is_profit_driven(PublisherClass::TopOtherWeb));
  EXPECT_FALSE(is_profit_driven(PublisherClass::TopAltruistic));
}

TEST(ClassProfiles, FakeSeedsUntilRemoved) {
  EXPECT_TRUE(class_profile(PublisherClass::FakeAntipiracy).seeding.seed_until_removed);
  EXPECT_TRUE(class_profile(PublisherClass::FakeMalware).seeding.seed_until_removed);
  EXPECT_FALSE(class_profile(PublisherClass::Regular).seeding.seed_until_removed);
}

TEST(ClassProfiles, SeedingOrderingAcrossClasses) {
  // Hosted profit-driven publishers commit to longer minimum seeding than
  // regular users (Fig. 4a ordering is generated from these knobs).
  EXPECT_GT(class_profile(PublisherClass::TopPortalOwner).seeding.min_seed_time,
            class_profile(PublisherClass::Regular).seeding.min_seed_time);
  EXPECT_GT(class_profile(PublisherClass::FakeMalware).seeding.max_seed_time,
            class_profile(PublisherClass::TopPortalOwner).seeding.max_seed_time);
}

TEST(DrawCategory, FollowsWeights) {
  const ClassProfile& other_web = class_profile(PublisherClass::TopOtherWeb);
  Rng rng(1);
  int porn = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    if (draw_category(other_web, rng) == ContentCategory::Porn) ++porn;
  }
  // §5.1: 70% of other-web publishers' content is porn.
  EXPECT_NEAR(porn / static_cast<double>(n), 0.70, 0.03);
}

TEST(DrawCategory, NeverDrawsZeroWeightCategory) {
  const ClassProfile& fake = class_profile(PublisherClass::FakeAntipiracy);
  ASSERT_EQ(fake.category_weights[4], 0.0);  // Audiobooks
  Rng rng(2);
  for (int i = 0; i < 3000; ++i) {
    EXPECT_NE(draw_category(fake, rng), ContentCategory::Audiobooks);
  }
}

TEST(PromoChannels, BitmaskOps) {
  const PromoChannel both = PromoChannel::Textbox | PromoChannel::FilenameSuffix;
  EXPECT_TRUE(has_channel(both, PromoChannel::Textbox));
  EXPECT_TRUE(has_channel(both, PromoChannel::FilenameSuffix));
  EXPECT_FALSE(has_channel(both, PromoChannel::PayloadTextFile));
  EXPECT_FALSE(has_channel(PromoChannel::None, PromoChannel::Textbox));
}

TEST(Names, ReleaseTitlesLookScene) {
  Rng rng(3);
  const std::string movie = make_release_title(ContentCategory::Movies, rng);
  EXPECT_TRUE(contains_icase(movie, "rip") || contains_icase(movie, "x264"))
      << movie;
  const std::string tv = make_release_title(ContentCategory::TvShows, rng);
  EXPECT_NE(tv.find(".S0"), std::string::npos) << tv;
  EXPECT_NE(tv.find("E"), std::string::npos);
  const std::string sw = make_release_title(ContentCategory::Software, rng);
  EXPECT_NE(sw.find("Keygen"), std::string::npos) << sw;
}

TEST(Names, EveryCategoryProducesNonEmptyTitles) {
  Rng rng(4);
  for (const ContentCategory c : kAllCategories) {
    for (int i = 0; i < 20; ++i) {
      EXPECT_FALSE(make_release_title(c, rng).empty());
      EXPECT_FALSE(make_catchy_title(c, rng).empty());
    }
  }
}

TEST(Names, CatchyTitlesNameHotReleases) {
  Rng rng(5);
  // Catchy titles are drawn from a small hot list, so duplicates across
  // draws are frequent — that is the point (decoys for hot content).
  std::set<std::string> titles;
  for (int i = 0; i < 100; ++i) {
    titles.insert(make_catchy_title(ContentCategory::Movies, rng));
  }
  EXPECT_LT(titles.size(), 60u);
}

TEST(Names, HackedUsernamesLookRandom) {
  Rng rng(6);
  std::set<std::string> names;
  for (int i = 0; i < 200; ++i) {
    const std::string name = make_hacked_username(rng);
    EXPECT_GE(name.size(), 6u);
    EXPECT_LE(name.size(), 10u);
    names.insert(name);
  }
  EXPECT_GT(names.size(), 195u);  // essentially no collisions
}

TEST(Names, DomainsHaveTlds) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const std::string domain = make_domain("", rng);
    const bool has_tld = ends_with(domain, ".com") || ends_with(domain, ".net") ||
                         ends_with(domain, ".org") || ends_with(domain, ".info") ||
                         ends_with(domain, ".to");
    EXPECT_TRUE(has_tld) << domain;
  }
}

TEST(Names, BrandHintFlowsIntoDomain) {
  Rng rng(8);
  const std::string domain = make_domain("UltraTorrents", rng);
  EXPECT_TRUE(starts_with(domain, "ultratorrents")) << domain;
}

TEST(Names, EnumRendering) {
  EXPECT_EQ(to_string(PublisherClass::FakeMalware), "Fake-Malware");
  EXPECT_EQ(to_string(IpStrategy::DynamicCommercial), "DynamicCommercial");
}

// --- plan_seed_sessions behaviour ---

constexpr SimTime kNever = std::numeric_limits<SimTime>::max();

SeedingPolicy basic_policy() {
  SeedingPolicy p;
  p.leave_after_other_seeders = 1;
  p.min_seed_time = hours(1);
  p.max_seed_time = hours(10);
  p.mean_extra_seed = hours(1);
  p.daily_online_hours = 24.0;
  p.delayed_start_prob = 0.0;
  return p;
}

TEST(PlanSeedSessions, LeavesAfterEnoughSeeders) {
  Rng rng(9);
  const auto sessions = plan_seed_sessions(basic_policy(), /*birth=*/0,
                                           /*enough=*/hours(2), /*removal=*/-1,
                                           /*hard_end=*/days(30), 0, rng);
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].start, 0);
  EXPECT_GE(sessions[0].end, hours(2));          // at least until handover
  EXPECT_LE(sessions[0].end, hours(10));         // capped by max
}

TEST(PlanSeedSessions, NoHandoverSeedsToMax) {
  Rng rng(10);
  const auto sessions = plan_seed_sessions(basic_policy(), 0, kNever, -1,
                                           days(30), 0, rng);
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].end, hours(10));
}

TEST(PlanSeedSessions, MinSeedTimeEnforced) {
  Rng rng(11);
  SeedingPolicy p = basic_policy();
  p.min_seed_time = hours(4);
  const auto sessions =
      plan_seed_sessions(p, 0, /*enough=*/minutes(5), -1, days(30), 0, rng);
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_GE(sessions[0].end, hours(4));
}

TEST(PlanSeedSessions, FakeSeedsUntilRemovalPlusLinger) {
  Rng rng(12);
  SeedingPolicy p = basic_policy();
  p.seed_until_removed = true;
  p.mean_post_removal_linger = hours(2);
  p.max_seed_time = days(6);
  const SimTime removal = days(2);
  const auto sessions = plan_seed_sessions(p, 0, kNever, removal, days(30), 0, rng);
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_GE(sessions[0].end, removal);
  EXPECT_LE(sessions[0].end, removal + days(2));
}

TEST(PlanSeedSessions, FakeNeverRemovedUsesCap) {
  Rng rng(13);
  SeedingPolicy p = basic_policy();
  p.seed_until_removed = true;
  p.max_seed_time = days(3);
  const auto sessions = plan_seed_sessions(p, 100, kNever, -1, days(30), 0, rng);
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].end, 100 + days(3));
}

TEST(PlanSeedSessions, HardEndTruncates) {
  Rng rng(14);
  const auto sessions = plan_seed_sessions(basic_policy(), 0, kNever, -1,
                                           hours(3), 0, rng);
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].end, hours(3));
}

TEST(PlanSeedSessions, HardEndBeforeBirthYieldsNothing) {
  Rng rng(15);
  EXPECT_TRUE(plan_seed_sessions(basic_policy(), hours(5), kNever, -1, hours(4),
                                 0, rng)
                  .empty());
}

TEST(PlanSeedSessions, AvailabilitySplitsIntoDailySessions) {
  Rng rng(16);
  SeedingPolicy p = basic_policy();
  p.daily_online_hours = 8.0;
  p.max_seed_time = hours(60);
  const auto sessions = plan_seed_sessions(p, 0, kNever, -1, days(30), 0, rng);
  ASSERT_GE(sessions.size(), 2u);
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    EXPECT_LE(sessions[i].length(), hours(8));
    if (i > 0) {
      EXPECT_GT(sessions[i].start, sessions[i - 1].end);
    }
  }
}

TEST(PlanSeedSessions, DelayedStartShiftsSessions) {
  SeedingPolicy p = basic_policy();
  p.delayed_start_prob = 1.0;
  p.mean_start_delay = hours(2);
  double total_delay = 0;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed);
    const auto sessions = plan_seed_sessions(p, 0, kNever, -1, days(30), 0, rng);
    ASSERT_FALSE(sessions.empty());
    EXPECT_GE(sessions[0].start, 0);
    total_delay += static_cast<double>(sessions[0].start);
  }
  EXPECT_NEAR(total_delay / 50.0, static_cast<double>(hours(2)), hours(1));
}

}  // namespace
}  // namespace btpub
