// Publisher agent behaviour: identity cycling, IP strategies, promotion.
#include "publisher/publisher.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/strings.hpp"

namespace btpub {
namespace {

Publisher base_publisher(PublisherClass cls) {
  Publisher p;
  p.id = 1;
  p.cls = cls;
  p.usernames = {"mainuser"};
  p.endpoints = {{IpAddress(10, 0, 0, 1), 6881}};
  p.hosted = true;
  p.popularity_median = 20.0;
  p.popularity_sigma = 1.0;
  p.seeding = class_profile(cls).seeding;
  return p;
}

TEST(PublisherAgent, RegularUsesItsSingleIdentity) {
  Publisher p = base_publisher(PublisherClass::Regular);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    const PublishedWork work = p.make_work(hours(i), static_cast<std::size_t>(i), rng);
    EXPECT_EQ(work.username, "mainuser");
    EXPECT_EQ(work.endpoint.ip, IpAddress(10, 0, 0, 1));
    EXPECT_EQ(work.payload, PayloadKind::Genuine);
  }
}

TEST(PublisherAgent, FakeFarmCyclesThrowawaysAndReusesCompromised) {
  Publisher p = base_publisher(PublisherClass::FakeMalware);
  p.usernames = {"hijacked", "aaa", "bbb", "ccc"};
  p.has_compromised_username = true;
  p.compromised_use_prob = 0.4;
  Rng rng(2);
  std::set<std::string> seen;
  int hijacked_uses = 0;
  for (int i = 0; i < 300; ++i) {
    const PublishedWork work = p.make_work(hours(i), static_cast<std::size_t>(i), rng);
    seen.insert(work.username);
    if (work.username == "hijacked") ++hijacked_uses;
    EXPECT_NE(work.payload, PayloadKind::Genuine);
  }
  EXPECT_EQ(seen.size(), 4u);  // all identities used
  EXPECT_NEAR(hijacked_uses / 300.0, 0.4, 0.1);
}

TEST(PublisherAgent, FakeFarmPayloadMatchesClass) {
  Publisher ap = base_publisher(PublisherClass::FakeAntipiracy);
  Publisher mw = base_publisher(PublisherClass::FakeMalware);
  Rng rng(3);
  EXPECT_EQ(ap.make_work(0, 0, rng).payload, PayloadKind::FakeAntipiracy);
  EXPECT_EQ(mw.make_work(0, 0, rng).payload, PayloadKind::FakeMalware);
}

TEST(PublisherAgent, HostingMultiRotatesEndpoints) {
  Publisher p = base_publisher(PublisherClass::TopPortalOwner);
  p.strategy = IpStrategy::HostingMulti;
  p.endpoints = {{IpAddress(10, 0, 0, 1), 1},
                 {IpAddress(10, 0, 0, 2), 2},
                 {IpAddress(10, 0, 0, 3), 3}};
  Rng rng(4);
  std::set<std::uint32_t> used;
  for (int i = 0; i < 9; ++i) used.insert(p.make_work(0, static_cast<std::size_t>(i), rng).endpoint.ip.value());
  EXPECT_EQ(used.size(), 3u);
}

TEST(PublisherAgent, DynamicCommercialRotatesByTime) {
  Publisher p = base_publisher(PublisherClass::TopAltruistic);
  p.strategy = IpStrategy::DynamicCommercial;
  p.endpoints = {{IpAddress(1, 0, 0, 1), 1}, {IpAddress(1, 0, 0, 2), 1}};
  Rng rng(5);
  const auto day0 = p.make_work(hours(1), 0, rng).endpoint.ip;
  const auto day0b = p.make_work(hours(30), 1, rng).endpoint.ip;  // same 2-day slot
  const auto day2 = p.make_work(days(2) + 1, 2, rng).endpoint.ip;
  EXPECT_EQ(day0, day0b);
  EXPECT_NE(day0, day2);
}

TEST(PublisherAgent, NatOnlyAppliesToHomeConnections) {
  Publisher hosted = base_publisher(PublisherClass::TopPortalOwner);
  hosted.nat = true;
  hosted.hosted = true;
  Rng rng(6);
  EXPECT_FALSE(hosted.make_work(0, 0, rng).endpoint_nat);
  Publisher home = base_publisher(PublisherClass::Regular);
  home.nat = true;
  home.hosted = false;
  EXPECT_TRUE(home.make_work(0, 0, rng).endpoint_nat);
}

TEST(PublisherAgent, TextboxPromotionChannel) {
  Publisher p = base_publisher(PublisherClass::TopPortalOwner);
  p.promo_domain = "ultratorrents.com";
  p.promo_channels = PromoChannel::Textbox;
  Rng rng(7);
  const PublishedWork work = p.make_work(0, 0, rng);
  EXPECT_NE(work.textbox.find("http://www.ultratorrents.com/"), std::string::npos);
  EXPECT_EQ(work.title.find("ultratorrents.com"), std::string::npos);
}

TEST(PublisherAgent, FilenamePromotionChannel) {
  Publisher p = base_publisher(PublisherClass::TopOtherWeb);
  p.promo_domain = "pixsor.com";
  p.promo_channels = PromoChannel::FilenameSuffix;
  Rng rng(8);
  const PublishedWork work = p.make_work(0, 0, rng);
  EXPECT_TRUE(ends_with(work.title, "-pixsor.com")) << work.title;
}

TEST(PublisherAgent, PayloadTextFilePromotionChannel) {
  Publisher p = base_publisher(PublisherClass::TopPortalOwner);
  p.promo_domain = "divxatope.com";
  p.promo_channels = PromoChannel::PayloadTextFile;
  Rng rng(9);
  const PublishedWork work = p.make_work(0, 0, rng);
  bool found = false;
  for (const FileEntry& f : work.files) {
    if (f.path == "Visit-www-divxatope-com.txt") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(PublisherAgent, NoPromotionWithoutDomain) {
  Publisher p = base_publisher(PublisherClass::TopAltruistic);
  Rng rng(10);
  const PublishedWork work = p.make_work(0, 0, rng);
  EXPECT_EQ(work.textbox.find("http://www."), std::string::npos);
  // Altruistic publishers beg for seeders instead (§5.1).
  EXPECT_NE(work.textbox.find("seed"), std::string::npos);
}

TEST(PublisherAgent, LanguageTagsTitle) {
  Publisher p = base_publisher(PublisherClass::TopPortalOwner);
  p.language = Language::Spanish;
  Rng rng(11);
  const PublishedWork work = p.make_work(0, 0, rng);
  EXPECT_NE(work.title.find(".SPANiSH"), std::string::npos) << work.title;
  EXPECT_EQ(work.language, Language::Spanish);
}

TEST(PublisherAgent, FilesCarryPlausibleSizes) {
  Publisher p = base_publisher(PublisherClass::Regular);
  Rng rng(12);
  for (int i = 0; i < 50; ++i) {
    const PublishedWork work = p.make_work(0, 0, rng);
    ASSERT_FALSE(work.files.empty());
    EXPECT_GT(work.files.front().length, 0);
  }
}

TEST(PublisherAgent, ExpectedDownloadsFollowConfiguredMedian) {
  Publisher p = base_publisher(PublisherClass::Regular);
  p.popularity_median = 30.0;
  p.popularity_sigma = 0.8;
  Rng rng(13);
  std::vector<double> draws;
  for (int i = 0; i < 4001; ++i) draws.push_back(p.make_work(0, 0, rng).expected_downloads);
  std::nth_element(draws.begin(), draws.begin() + 2000, draws.end());
  EXPECT_NEAR(draws[2000], 30.0, 3.0);
}

TEST(PublisherAgent, CrossPostProbability) {
  Publisher p = base_publisher(PublisherClass::Regular);
  p.cross_post_probability = 0.25;
  Rng rng(14);
  int crossed = 0;
  for (int i = 0; i < 4000; ++i) crossed += p.make_work(0, 0, rng).cross_posted;
  EXPECT_NEAR(crossed / 4000.0, 0.25, 0.03);
}

}  // namespace
}  // namespace btpub
