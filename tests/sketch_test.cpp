// Probabilistic sketches: HyperLogLog accuracy (including saturation at
// 10M+ distinct IPs), merge semantics, and count-min guarantees.
#include "analysis/streaming/sketch.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <thread>
#include <vector>

#include "net/ip.hpp"
#include "util/rng.hpp"

namespace btpub {
namespace {

TEST(HyperLogLog, EmptyEstimatesZero) {
  HyperLogLog hll(12);
  EXPECT_TRUE(hll.empty());
  EXPECT_EQ(hll.estimate(), 0.0);
}

TEST(HyperLogLog, ExactInLinearCountingRange) {
  // Small cardinalities fall in the linear-counting regime, where the
  // estimate is near-exact — the regime every per-torrent sketch lives in.
  HyperLogLog hll(12);
  for (std::uint64_t i = 0; i < 100; ++i) hll.add(i);
  EXPECT_NEAR(hll.estimate(), 100.0, 5.0);  // a few register collisions
  // Duplicates never move the estimate.
  const double before = hll.estimate();
  for (std::uint64_t i = 0; i < 100; ++i) hll.add(i);
  EXPECT_EQ(hll.estimate(), before);
}

TEST(HyperLogLog, MidRangeWithinThreeSigma) {
  HyperLogLog hll(12);
  const std::size_t n = 100000;
  for (std::uint64_t i = 0; i < n; ++i) hll.add(i * 0x9E3779B9ULL + 12345);
  const double err = std::abs(hll.estimate() - static_cast<double>(n)) /
                     static_cast<double>(n);
  EXPECT_LT(err, 3.0 * hll.relative_error());
}

TEST(HyperLogLog, SaturationTenMillionIps) {
  // The 10M+ distinct-IP target of the streaming layer: precision 14
  // (16 KiB — the memory bound is the whole point) must stay within its
  // documented error band instead of degrading, as an exact set never
  // could at this scale without ~80 MB.
  HyperLogLog hll(14);
  const std::size_t n = 10'000'000;
  for (std::uint64_t i = 0; i < n; ++i) hll.add(i);
  const double err = std::abs(hll.estimate() - static_cast<double>(n)) /
                     static_cast<double>(n);
  EXPECT_LT(err, 4.0 * hll.relative_error());  // 4 sigma ~= 1.6% at p=14
}

TEST(HyperLogLog, MergeEqualsUnion) {
  HyperLogLog a(12), b(12), u(12);
  for (std::uint64_t i = 0; i < 5000; ++i) {
    a.add(i);
    u.add(i);
  }
  for (std::uint64_t i = 2500; i < 7500; ++i) {
    b.add(i);
    u.add(i);
  }
  a.merge(b);
  EXPECT_EQ(a.estimate(), u.estimate());  // identical registers, exactly
}

TEST(HyperLogLog, MergeRejectsMismatchedSketches) {
  HyperLogLog a(12), b(13), c(12, /*salt=*/7);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(HyperLogLog, SaltChangesHashingNotAccuracy) {
  HyperLogLog a(12, 1), b(12, 2);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    a.add(i);
    b.add(i);
  }
  EXPECT_NEAR(a.estimate(), 10000.0, 3.0 * a.relative_error() * 10000.0);
  EXPECT_NEAR(b.estimate(), 10000.0, 3.0 * b.relative_error() * 10000.0);
}

TEST(HyperLogLog, PrecisionClamped) {
  EXPECT_EQ(HyperLogLog(1).register_count(), 16u);
  EXPECT_EQ(HyperLogLog(30).register_count(), std::size_t{1} << 18);
}

TEST(CountMinSketch, NeverUnderestimates) {
  CountMinSketch cms(512, 4);
  Rng rng(99);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> truth;
  for (int k = 0; k < 50; ++k) {
    const auto key = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30));
    const auto count = static_cast<std::uint64_t>(rng.uniform_int(1, 200));
    for (std::uint64_t i = 0; i < count; ++i) cms.add(key);
    truth.emplace_back(key, count);
  }
  for (const auto& [key, count] : truth) {
    EXPECT_GE(cms.count(key), count);
  }
}

TEST(CountMinSketch, HeavyHitterSurvivesNoise) {
  // The announce-rate use case: one flooding IP among broad background
  // noise must report close to its true count (overestimate bounded by
  // epsilon * total mass).
  CountMinSketch cms(4096, 4);
  const std::uint64_t heavy = 0xC0FFEEULL;
  for (int i = 0; i < 50000; ++i) cms.add(heavy);
  for (std::uint64_t i = 0; i < 100000; ++i) cms.add(i * 31 + 7);
  EXPECT_GE(cms.count(heavy), 50000u);
  EXPECT_LE(static_cast<double>(cms.count(heavy)),
            50000.0 + cms.epsilon() * static_cast<double>(cms.total()));
}

TEST(CountMinSketch, ConcurrentAddsAreExactInTotal) {
  // Relaxed atomic counters: the final state is a pure function of the
  // observation multiset, independent of thread interleaving — the
  // property the 1-vs-N convergence of the streaming layer rests on.
  CountMinSketch cms(1024, 4);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 25000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cms] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) cms.add(i % 97);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(cms.total(), kThreads * kPerThread);
  // Each thread added every key floor(25000/97) or one more time; counts
  // are at least the floor times the thread count.
  for (std::uint64_t key = 0; key < 97; ++key) {
    EXPECT_GE(cms.count(key), kThreads * (kPerThread / 97));
  }
}

TEST(CountMinSketch, DegenerateGeometryClamped) {
  CountMinSketch cms(0, 0);
  EXPECT_EQ(cms.width(), 1u);
  EXPECT_EQ(cms.depth(), 1u);
  cms.add(42);
  EXPECT_EQ(cms.count(42), 1u);
}

TEST(Mix64, AvalanchesAndIsDeterministic) {
  EXPECT_EQ(mix64(1), mix64(1));
  EXPECT_NE(mix64(1), mix64(2));
  // Single-bit input flips move many output bits (weak avalanche check).
  const std::uint64_t a = mix64(0x1000), b = mix64(0x1001);
  EXPECT_GE(std::popcount(a ^ b), 16);
}

}  // namespace
}  // namespace btpub
