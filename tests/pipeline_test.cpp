// Remaining analysis stages: contribution curve, ISP tables, content-type
// mix, popularity boxes, longitudinal table, income table, money flows.
#include <gtest/gtest.h>

#include "analysis/classify.hpp"
#include "analysis/content_type.hpp"
#include "analysis/contribution.hpp"
#include "analysis/income.hpp"
#include "analysis/isp.hpp"
#include "analysis/longitudinal.hpp"
#include "analysis/popularity.hpp"

namespace btpub {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  PipelineTest() {
    const IspId hosting = geo_.add_isp("HostCo", IspType::HostingProvider, "FR");
    const IspId eyeball = geo_.add_isp("EyeballCo", IspType::CommercialIsp, "US");
    geo_.add_block(CidrBlock(IpAddress(10, 0, 0, 0), 16), hosting, "Paris");
    geo_.add_block(CidrBlock(IpAddress(10, 1, 0, 0), 16), hosting, "Roubaix");
    for (std::uint8_t i = 0; i < 20; ++i) {
      geo_.add_block(CidrBlock(IpAddress(20, i, 0, 0), 16), eyeball,
                     "City" + std::to_string(i));
    }
    dataset_.style = DatasetStyle::Pb10;
    dataset_.window_end = days(30);

    Website portal;
    portal.domain = "megaseed.com";
    portal.type = BusinessType::PrivateBtPortal;
    portal.requires_registration = true;
    portal.value_usd = 40000;
    portal.daily_income_usd = 60;
    portal.daily_visits = 25000;
    portal.has_ads = true;
    portal.ad_networks = {"adserve-one.example", "clickbarn.example"};
    websites_.add(portal);
  }

  void add(const std::string& username, std::optional<IpAddress> ip,
           std::size_t downloads, ContentCategory category,
           const std::string& promo = "") {
    TorrentRecord record;
    record.portal_id = static_cast<TorrentId>(dataset_.torrents.size());
    record.username = username;
    record.publisher_ip = ip;
    record.category = category;
    record.title = username + std::to_string(record.portal_id);
    if (!promo.empty()) record.textbox = "see http://www." + promo + "/";
    dataset_.torrents.push_back(std::move(record));
    std::vector<IpAddress> ips;
    for (std::size_t i = 0; i < downloads; ++i) {
      ips.push_back(IpAddress(0x20000100u +
                              static_cast<std::uint32_t>(dataset_.torrents.size() * 251 + i)));
    }
    dataset_.downloaders.push_back(std::move(ips));
    dataset_.publisher_sightings.emplace_back();
  }

  void add_user_page(const std::string& username, SimTime first, SimTime last,
                     std::size_t count) {
    UserPage page;
    page.username = username;
    page.publish_times.push_back(first);
    for (std::size_t i = 1; i + 1 < count; ++i) {
      page.publish_times.push_back(first + static_cast<SimTime>(i) *
                                               (last - first) /
                                               static_cast<SimTime>(count));
    }
    page.publish_times.push_back(last);
    dataset_.user_pages[username] = std::move(page);
  }

  GeoDb geo_;
  Dataset dataset_;
  WebsiteDirectory websites_;
};

TEST_F(PipelineTest, ContributionCurveByUsername) {
  for (int i = 0; i < 9; ++i) add("whale", IpAddress(10, 0, 0, 1), 1,
                                  ContentCategory::Movies);
  for (int i = 0; i < 9; ++i) {
    add("minnow" + std::to_string(i), IpAddress(20, 0, 0, 1), 1,
        ContentCategory::Movies);
  }
  const IdentityAnalysis identity(dataset_, geo_, 5);
  const std::vector<double> xs{10.0, 100.0};
  const auto curve = contribution_curve(identity, xs);
  EXPECT_EQ(curve.publishers, 10u);
  EXPECT_EQ(curve.contents, 18u);
  // Top 10% of 10 publishers = the whale with half the content.
  EXPECT_NEAR(curve.points[0].content_percent, 50.0, 1e-9);
  EXPECT_NEAR(curve.points[1].content_percent, 100.0, 1e-9);
  EXPECT_GT(curve.gini, 0.3);
}

TEST_F(PipelineTest, TopConsumptionCountsTopIpDownloads) {
  add("pub1", IpAddress(10, 0, 0, 1), 0, ContentCategory::Movies);
  add("pub2", IpAddress(10, 0, 0, 2), 0, ContentCategory::Movies);
  // pub2's IP shows up as a downloader of pub1's torrent.
  dataset_.downloaders[0].push_back(IpAddress(10, 0, 0, 2));
  const IdentityAnalysis identity(dataset_, geo_, 10);
  const auto stats = top_publisher_consumption(dataset_, identity, 10);
  EXPECT_EQ(stats.considered, 2u);
  EXPECT_EQ(stats.zero_downloads, 1u);       // pub1 downloads nothing
  EXPECT_EQ(stats.under_five_downloads, 2u); // both under five
}

TEST_F(PipelineTest, IspShareTable) {
  for (int i = 0; i < 6; ++i) add("h", IpAddress(10, 0, 0, 1), 2,
                                  ContentCategory::Movies);
  for (int i = 0; i < 3; ++i) add("c", IpAddress(20, 3, 0, 1), 2,
                                  ContentCategory::Movies);
  add("anon", std::nullopt, 2, ContentCategory::Movies);  // excluded
  const auto rows = top_publisher_isps(dataset_, geo_, 10);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].isp, "HostCo");
  EXPECT_EQ(rows[0].type, IspType::HostingProvider);
  EXPECT_NEAR(rows[0].content_share, 6.0 / 9.0, 1e-9);
  EXPECT_EQ(rows[0].torrents, 6u);
  EXPECT_EQ(rows[1].isp, "EyeballCo");
  EXPECT_NEAR(rows[1].publisher_share, 0.5, 1e-9);
}

TEST_F(PipelineTest, IspFeederProfileCountsStructure) {
  add("a", IpAddress(10, 0, 0, 1), 1, ContentCategory::Movies);
  add("a", IpAddress(10, 0, 0, 1), 1, ContentCategory::Movies);
  add("b", IpAddress(10, 1, 0, 2), 1, ContentCategory::Movies);
  add("c", IpAddress(20, 5, 0, 3), 1, ContentCategory::Movies);
  const auto profile = isp_feeder_profile(dataset_, geo_, "HostCo");
  EXPECT_EQ(profile.fed_torrents, 3u);
  EXPECT_EQ(profile.distinct_ips, 2u);
  EXPECT_EQ(profile.distinct_prefixes16, 2u);
  EXPECT_EQ(profile.distinct_locations, 2u);  // Paris + Roubaix
}

TEST_F(PipelineTest, ConsumersFromIspExcludesPublishers) {
  add("a", IpAddress(10, 0, 0, 1), 0, ContentCategory::Movies);
  // A genuine hosting-provider consumer and the publisher's own address.
  dataset_.downloaders[0].push_back(IpAddress(10, 0, 0, 50));
  dataset_.downloaders[0].push_back(IpAddress(10, 0, 0, 1));
  EXPECT_EQ(consumers_from_isp(dataset_, geo_, "HostCo", true), 1u);
  EXPECT_EQ(consumers_from_isp(dataset_, geo_, "HostCo", false), 2u);
  EXPECT_EQ(consumers_from_isp(dataset_, geo_, "EyeballCo"), 0u);
}

TEST_F(PipelineTest, TopHostingShareCountsNamedIsp) {
  for (int i = 0; i < 5; ++i) add("hostpub", IpAddress(10, 0, 0, 9), 1,
                                  ContentCategory::Movies);
  for (int i = 0; i < 4; ++i) add("homepub", IpAddress(20, 1, 0, 9), 1,
                                  ContentCategory::Movies);
  const IdentityAnalysis identity(dataset_, geo_, 10);
  const auto share = top_hosting_share(identity, geo_, "HostCo", 10);
  EXPECT_EQ(share.considered, 2u);
  EXPECT_EQ(share.at_hosting, 1u);
  EXPECT_EQ(share.at_named_isp, 1u);
}

TEST_F(PipelineTest, ContentTypeMixSumsToOne) {
  add("u", IpAddress(10, 0, 0, 1), 1, ContentCategory::Movies);
  add("u", IpAddress(10, 0, 0, 1), 1, ContentCategory::Porn);
  add("u", IpAddress(10, 0, 0, 1), 1, ContentCategory::Music);
  add("u", IpAddress(10, 0, 0, 1), 1, ContentCategory::Ebooks);
  const IdentityAnalysis identity(dataset_, geo_, 5);
  const auto mix = content_type_mix(dataset_, identity, TargetGroup::All);
  EXPECT_EQ(mix.contents, 4u);
  double sum = 0;
  for (double f : mix.fractions) sum += f;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // Movies + Porn both map to coarse Video.
  EXPECT_NEAR(mix.of(CoarseCategory::Video), 0.5, 1e-9);
  EXPECT_NEAR(mix.of(CoarseCategory::Books), 0.25, 1e-9);
  const auto panel = content_type_panel(dataset_, identity);
  EXPECT_EQ(panel.size(), 5u);
}

TEST_F(PipelineTest, PopularityBoxPerGroup) {
  for (int i = 0; i < 4; ++i) add("star", IpAddress(10, 0, 0, 1), 50,
                                  ContentCategory::Movies);
  add("casual1", IpAddress(20, 0, 0, 1), 4, ContentCategory::Movies);
  add("casual2", IpAddress(20, 0, 0, 2), 6, ContentCategory::Movies);
  const IdentityAnalysis identity(dataset_, geo_, 1);
  Rng rng(1);
  const auto all = popularity_box(identity, TargetGroup::All, 0, rng);
  EXPECT_EQ(all.box.count, 3u);
  const auto top = popularity_box(identity, TargetGroup::Top, 0, rng);
  EXPECT_EQ(top.box.count, 1u);
  EXPECT_DOUBLE_EQ(top.box.median, 50.0);
  const auto panel = popularity_panel(identity, 2, rng);
  EXPECT_EQ(panel.size(), 5u);
  EXPECT_EQ(panel[0].box.count, 2u);  // "All" subsampled to 2
}

TEST_F(PipelineTest, LongitudinalTableFromUserPages) {
  for (int i = 0; i < 6; ++i) add("portalpub", IpAddress(10, 0, 0, 1), 3,
                                  ContentCategory::Movies, "megaseed.com");
  for (int i = 0; i < 5; ++i) add("plainpub", IpAddress(20, 0, 0, 1), 3,
                                  ContentCategory::Music);
  add_user_page("portalpub", -days(400), 0, 120);
  add_user_page("plainpub", -days(100), 0, 20);
  const IdentityAnalysis identity(dataset_, geo_, 2);
  Rng rng(2);
  const auto classification =
      classify_top_publishers(dataset_, identity, websites_, 5, rng);
  const auto histories = publisher_histories(dataset_, classification);
  ASSERT_EQ(histories.size(), 2u);
  const auto rows = longitudinal_table(dataset_, classification);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].cls, BusinessClass::BtPortal);
  EXPECT_EQ(rows[0].publishers, 1u);
  EXPECT_NEAR(rows[0].lifetime_days.avg, 400.0, 1.0);
  EXPECT_NEAR(rows[0].publish_rate.avg, 120.0 / 400.0, 0.01);
  EXPECT_EQ(rows[2].cls, BusinessClass::Altruistic);
  EXPECT_EQ(rows[2].publishers, 1u);
  EXPECT_NEAR(rows[2].lifetime_days.avg, 100.0, 1.0);
}

TEST_F(PipelineTest, IncomeTableUsesPanelAverages) {
  for (int i = 0; i < 6; ++i) add("portalpub", IpAddress(10, 0, 0, 1), 3,
                                  ContentCategory::Movies, "megaseed.com");
  const IdentityAnalysis identity(dataset_, geo_, 1);
  Rng rng(3);
  const auto classification =
      classify_top_publishers(dataset_, identity, websites_, 5, rng);
  const auto rows =
      income_table(classification, websites_, AppraisalPanel::standard());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].cls, BusinessClass::BtPortal);
  EXPECT_EQ(rows[0].sites, 1u);
  // Estimates live within the noise envelope of the true values.
  EXPECT_GT(rows[0].value_usd.avg, 40000 * 0.3);
  EXPECT_LT(rows[0].value_usd.avg, 40000 * 3.0);
  EXPECT_EQ(rows[1].cls, BusinessClass::OtherWeb);
  EXPECT_EQ(rows[1].sites, 0u);
}

TEST_F(PipelineTest, MoneyFlowsAggregates) {
  for (int i = 0; i < 6; ++i) add("portalpub", IpAddress(10, 0, 0, 1), 3,
                                  ContentCategory::Movies, "megaseed.com");
  add("other", IpAddress(10, 0, 0, 2), 1, ContentCategory::Movies);
  const IdentityAnalysis identity(dataset_, geo_, 2);
  Rng rng(4);
  const auto classification =
      classify_top_publishers(dataset_, identity, websites_, 5, rng);
  const auto flows =
      money_flows(dataset_, classification, websites_, AppraisalPanel::standard(),
                  geo_, "HostCo", 300.0);
  EXPECT_GT(flows.publishers_income_per_day_usd, 0.0);
  EXPECT_EQ(flows.hosting_servers, 2u);  // two HostCo publisher addresses
  EXPECT_DOUBLE_EQ(flows.hosting_income_per_month_eur, 600.0);
  EXPECT_EQ(flows.publishers_with_ads, 1u);
  EXPECT_EQ(flows.ad_networks, 2u);
}

}  // namespace
}  // namespace btpub
