// Discrete-event engine tests.
#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace btpub {
namespace {

TEST(EventQueue, DispatchesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30);
  EXPECT_EQ(q.dispatched(), 3u);
}

TEST(EventQueue, FifoWithinSameTimestamp) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ScheduleInIsRelative) {
  EventQueue q;
  SimTime seen = -1;
  q.schedule_at(100, [&] {
    q.schedule_in(50, [&] { seen = q.now(); });
  });
  q.run();
  EXPECT_EQ(seen, 150);
}

TEST(EventQueue, PastSchedulingClampsToNow) {
  EventQueue q;
  SimTime seen = -1;
  q.schedule_at(100, [&] {
    q.schedule_at(10, [&] { seen = q.now(); });  // in the past
  });
  q.run();
  EXPECT_EQ(seen, 100);
}

TEST(EventQueue, NegativeDelayClamps) {
  EventQueue q;
  bool ran = false;
  q.schedule_at(50, [&] {
    q.schedule_in(-20, [&] { ran = true; });
  });
  q.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(q.now(), 50);
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
  EventQueue q;
  std::vector<SimTime> fired;
  for (SimTime t : {10, 20, 30, 40}) {
    q.schedule_at(t, [&fired, t] { fired.push_back(t); });
  }
  q.run_until(25);
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20}));
  EXPECT_EQ(q.now(), 25);
  EXPECT_EQ(q.pending(), 2u);
  q.run_until(100);
  EXPECT_EQ(fired.size(), 4u);
  EXPECT_EQ(q.now(), 100);
}

TEST(EventQueue, RunUntilInclusiveOfDeadline) {
  EventQueue q;
  bool ran = false;
  q.schedule_at(25, [&] { ran = true; });
  q.run_until(25);
  EXPECT_TRUE(ran);
}

TEST(EventQueue, StepOneAtATime) {
  EventQueue q;
  int count = 0;
  q.schedule_at(1, [&] { ++count; });
  q.schedule_at(2, [&] { ++count; });
  EXPECT_TRUE(q.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(q.step());
  EXPECT_FALSE(q.step());
  EXPECT_EQ(count, 2);
}

TEST(EventQueue, SelfReschedulingChain) {
  EventQueue q;
  int ticks = 0;
  std::function<void()> tick = [&] {
    if (++ticks < 5) q.schedule_in(10, tick);
  };
  q.schedule_at(0, tick);
  q.run();
  EXPECT_EQ(ticks, 5);
  EXPECT_EQ(q.now(), 40);
}

}  // namespace
}  // namespace btpub
