// Discrete-event engine tests.
#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <utility>
#include <vector>

namespace btpub {
namespace {

TEST(EventQueue, DispatchesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30);
  EXPECT_EQ(q.dispatched(), 3u);
}

TEST(EventQueue, FifoWithinSameTimestamp) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ScheduleInIsRelative) {
  EventQueue q;
  SimTime seen = -1;
  q.schedule_at(100, [&] {
    q.schedule_in(50, [&] { seen = q.now(); });
  });
  q.run();
  EXPECT_EQ(seen, 150);
}

TEST(EventQueue, PastSchedulingClampsToNow) {
  EventQueue q;
  SimTime seen = -1;
  q.schedule_at(100, [&] {
    q.schedule_at(10, [&] { seen = q.now(); });  // in the past
  });
  q.run();
  EXPECT_EQ(seen, 100);
}

TEST(EventQueue, NegativeDelayClamps) {
  EventQueue q;
  bool ran = false;
  q.schedule_at(50, [&] {
    q.schedule_in(-20, [&] { ran = true; });
  });
  q.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(q.now(), 50);
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
  EventQueue q;
  std::vector<SimTime> fired;
  for (SimTime t : {10, 20, 30, 40}) {
    q.schedule_at(t, [&fired, t] { fired.push_back(t); });
  }
  q.run_until(25);
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20}));
  EXPECT_EQ(q.now(), 25);
  EXPECT_EQ(q.pending(), 2u);
  q.run_until(100);
  EXPECT_EQ(fired.size(), 4u);
  EXPECT_EQ(q.now(), 100);
}

TEST(EventQueue, RunUntilInclusiveOfDeadline) {
  EventQueue q;
  bool ran = false;
  q.schedule_at(25, [&] { ran = true; });
  q.run_until(25);
  EXPECT_TRUE(ran);
}

TEST(EventQueue, StepOneAtATime) {
  EventQueue q;
  int count = 0;
  q.schedule_at(1, [&] { ++count; });
  q.schedule_at(2, [&] { ++count; });
  EXPECT_TRUE(q.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(q.step());
  EXPECT_FALSE(q.step());
  EXPECT_EQ(count, 2);
}

TEST(EventQueue, SelfReschedulingChain) {
  EventQueue q;
  int ticks = 0;
  std::function<void()> tick = [&] {
    if (++ticks < 5) q.schedule_in(10, tick);
  };
  q.schedule_at(0, tick);
  q.run();
  EXPECT_EQ(ticks, 5);
  EXPECT_EQ(q.now(), 40);
}

// ---- typed lane -----------------------------------------------------------

Endpoint ep(std::uint32_t host) { return Endpoint{IpAddress(host), 6881}; }

TypedEvent join_event(std::uint32_t host) {
  TypedEvent event;
  event.kind = TypedEvent::Kind::NodeJoin;
  event.endpoint = ep(host);
  return event;
}

TEST(EventQueueTyped, DispatchesThroughHandler) {
  EventQueue q;
  std::vector<std::pair<TypedEvent::Kind, SimTime>> seen;
  q.set_typed_handler([&](const TypedEvent& event, SimTime at) {
    seen.emplace_back(event.kind, at);
  });
  TypedEvent leave;
  leave.kind = TypedEvent::Kind::NodeLeave;
  leave.endpoint = ep(1);
  q.schedule_typed(20, leave);
  q.schedule_typed(10, join_event(1));
  q.run();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], std::make_pair(TypedEvent::Kind::NodeJoin, SimTime{10}));
  EXPECT_EQ(seen[1], std::make_pair(TypedEvent::Kind::NodeLeave, SimTime{20}));
  EXPECT_EQ(q.dispatched(), 2u);
}

TEST(EventQueueTyped, WithoutHandlerThrows) {
  EventQueue q;
  q.schedule_typed(5, join_event(1));
  EXPECT_THROW(q.run(), std::logic_error);
}

TEST(EventQueueTyped, EqualTimestampsInterleaveInSchedulingOrder) {
  // The two lanes share one sequence counter, so at an equal timestamp the
  // globally earlier schedule_* call fires first regardless of lane.
  EventQueue q;
  std::vector<int> order;
  q.set_typed_handler([&](const TypedEvent&, SimTime) { order.push_back(1); });
  q.schedule_at(7, [&] { order.push_back(0); });   // seq 0, callback lane
  q.schedule_typed(7, join_event(1));              // seq 1, typed lane
  q.schedule_at(7, [&] { order.push_back(2); });   // seq 2, callback lane
  q.schedule_typed(7, join_event(2));              // seq 3, typed lane
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 1}));
}

TEST(EventQueueTyped, PeriodicCursorReArmsLazily) {
  EventQueue q;
  std::vector<SimTime> fired;
  q.set_typed_handler([&](const TypedEvent& event, SimTime at) {
    EXPECT_EQ(event.kind, TypedEvent::Kind::Announce);
    fired.push_back(at);
    // Lazy: while the cursor is live, exactly one pending record exists —
    // the current dispatch re-armed at most the *next* occurrence.
    EXPECT_LE(q.pending_typed(), 1u);
  });
  TypedEvent announce;
  announce.kind = TypedEvent::Kind::Announce;
  announce.endpoint = ep(9);
  announce.every = 10;
  announce.until = 45;  // exclusive: 40 fires, 50 never scheduled
  q.schedule_typed(10, announce);
  EXPECT_EQ(q.pending_typed(), 1u);
  q.run();
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20, 30, 40}));
  // One initial schedule + three re-arms, each counted.
  EXPECT_EQ(q.typed_scheduled(), 4u);
  EXPECT_EQ(q.callbacks_scheduled(), 0u);
}

TEST(EventQueueTyped, ReArmBoundaryIsExclusive) {
  EventQueue q;
  std::vector<SimTime> fired;
  q.set_typed_handler(
      [&](const TypedEvent&, SimTime at) { fired.push_back(at); });
  TypedEvent announce;
  announce.kind = TypedEvent::Kind::Announce;
  announce.endpoint = ep(3);
  announce.every = 10;
  announce.until = 30;  // next occurrence at exactly `until` must not fire
  q.schedule_typed(10, announce);
  q.run();
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20}));
}

TEST(EventQueueTyped, OneShotDoesNotReArm) {
  EventQueue q;
  int count = 0;
  q.set_typed_handler([&](const TypedEvent&, SimTime) { ++count; });
  TypedEvent once = join_event(4);  // every == 0
  once.until = 1000;
  q.schedule_typed(10, once);
  q.run();
  EXPECT_EQ(count, 1);
  EXPECT_EQ(q.typed_scheduled(), 1u);
}

TEST(EventQueueTyped, RunUntilSpansBothLanes) {
  EventQueue q;
  std::vector<int> order;
  q.set_typed_handler([&](const TypedEvent&, SimTime) { order.push_back(1); });
  q.schedule_typed(10, join_event(1));
  q.schedule_at(20, [&] { order.push_back(0); });
  TypedEvent cursor;
  cursor.kind = TypedEvent::Kind::Announce;
  cursor.endpoint = ep(2);
  cursor.every = 25;
  cursor.until = 1000;
  q.schedule_typed(30, cursor);
  q.run_until(35);
  EXPECT_EQ(order, (std::vector<int>{1, 0, 1}));
  EXPECT_EQ(q.now(), 35);
  EXPECT_EQ(q.pending(), 1u);  // the re-armed cursor at 55
  q.run_until(55);
  EXPECT_EQ(order.size(), 4u);
}

TEST(EventQueueTyped, PastTypedSchedulingClampsToNow) {
  EventQueue q;
  SimTime seen = -1;
  q.set_typed_handler([&](const TypedEvent&, SimTime at) { seen = at; });
  q.schedule_at(100, [&] { q.schedule_typed(10, join_event(1)); });
  q.run();
  EXPECT_EQ(seen, 100);
}

TEST(EventQueueTyped, CountersSplitByLane) {
  EventQueue q;
  q.set_typed_handler([](const TypedEvent&, SimTime) {});
  q.schedule_at(1, [] {});
  q.schedule_in(2, [] {});
  q.schedule_typed(3, TypedEvent{});
  EXPECT_EQ(q.callbacks_scheduled(), 2u);
  EXPECT_EQ(q.typed_scheduled(), 1u);
  EXPECT_EQ(q.pending_callbacks(), 2u);
  EXPECT_EQ(q.pending_typed(), 1u);
  EXPECT_EQ(q.pending(), 3u);
  q.run();
  EXPECT_EQ(q.dispatched(), 3u);
}

}  // namespace
}  // namespace btpub
