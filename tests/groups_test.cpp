// Identity analysis: username/IP aggregation, fake detection, groups.
#include "analysis/groups.hpp"

#include <gtest/gtest.h>

namespace btpub {
namespace {

class GroupsTest : public ::testing::Test {
 protected:
  GroupsTest() {
    const IspId hosting = geo_.add_isp("HostCo", IspType::HostingProvider, "FR");
    const IspId eyeball = geo_.add_isp("EyeballCo", IspType::CommercialIsp, "US");
    geo_.add_block(CidrBlock(IpAddress(10, 0, 0, 0), 8), hosting, "Paris");
    geo_.add_block(CidrBlock(IpAddress(20, 0, 0, 0), 8), eyeball, "Denver");
    dataset_.style = DatasetStyle::Pb10;
    dataset_.window_end = days(30);
  }

  /// Adds a torrent by `username` from `ip` with `downloads` downloaders.
  void add(const std::string& username, std::optional<IpAddress> ip,
           std::size_t downloads,
           ContentCategory category = ContentCategory::Movies) {
    TorrentRecord record;
    record.portal_id = static_cast<TorrentId>(dataset_.torrents.size());
    record.username = username;
    record.publisher_ip = ip;
    record.category = category;
    record.title = username + "-" + std::to_string(record.portal_id);
    dataset_.torrents.push_back(std::move(record));
    std::vector<IpAddress> ips;
    for (std::size_t i = 0; i < downloads; ++i) {
      ips.push_back(IpAddress(0x30000000u +
                              static_cast<std::uint32_t>(dataset_.torrents.size()) * 1000 +
                              static_cast<std::uint32_t>(i)));
    }
    dataset_.downloaders.push_back(std::move(ips));
    dataset_.publisher_sightings.emplace_back();
  }

  void ban(const std::string& username) {
    UserPage page;
    page.username = username;
    page.banned = true;
    dataset_.user_pages[username] = std::move(page);
  }

  GeoDb geo_;
  Dataset dataset_;
};

TEST_F(GroupsTest, AggregatesByUsername) {
  add("alice", IpAddress(20, 0, 0, 1), 10);
  add("alice", IpAddress(20, 0, 0, 1), 20);
  add("bob", std::nullopt, 5);
  const IdentityAnalysis identity(dataset_, geo_, 10);
  ASSERT_EQ(identity.usernames().size(), 2u);
  const UsernameStats* alice = identity.find_username("alice");
  ASSERT_NE(alice, nullptr);
  EXPECT_EQ(alice->content_count, 2u);
  EXPECT_EQ(alice->download_count, 30u);
  EXPECT_EQ(alice->ips.size(), 1u);  // deduped
  const UsernameStats* bob = identity.find_username("bob");
  ASSERT_NE(bob, nullptr);
  EXPECT_TRUE(bob->ips.empty());
  EXPECT_EQ(identity.find_username("carol"), nullptr);
  EXPECT_EQ(identity.total_content(), 3u);
  EXPECT_EQ(identity.total_downloads(), 35u);
}

TEST_F(GroupsTest, UsernamesSortedByContribution) {
  add("small", IpAddress(20, 0, 0, 1), 1);
  for (int i = 0; i < 5; ++i) add("big", IpAddress(20, 0, 0, 2), 1);
  const IdentityAnalysis identity(dataset_, geo_, 10);
  EXPECT_EQ(identity.usernames()[0].username, "big");
  EXPECT_EQ(identity.ips()[0].ip, IpAddress(20, 0, 0, 2));
}

TEST_F(GroupsTest, FakeFarmDetectedFromMultiUsernameBannedIp) {
  const IpAddress farm(10, 0, 0, 7);
  for (const char* name : {"x1", "x2", "x3", "x4"}) {
    add(name, farm, 2);
    ban(name);
  }
  add("legit", IpAddress(20, 0, 0, 1), 50);
  const IdentityAnalysis identity(dataset_, geo_, 10);
  EXPECT_TRUE(identity.fake_ips().contains(farm));
  for (const char* name : {"x1", "x2", "x3", "x4"}) {
    EXPECT_TRUE(identity.is_fake(name)) << name;
  }
  EXPECT_FALSE(identity.is_fake("legit"));
}

TEST_F(GroupsTest, FewUsernamesPerIpIsNotAFarm) {
  const IpAddress shared(20, 0, 0, 9);
  add("roomie1", shared, 2);
  add("roomie2", shared, 2);  // two usernames, nobody banned
  const IdentityAnalysis identity(dataset_, geo_, 10);
  EXPECT_FALSE(identity.fake_ips().contains(shared));
  EXPECT_FALSE(identity.is_fake("roomie1"));
}

TEST_F(GroupsTest, UnbannedMultiUserIpNotAFarm) {
  const IpAddress uni(10, 0, 0, 3);  // e.g. a university NAT
  for (const char* name : {"s1", "s2", "s3", "s4", "s5"}) add(name, uni, 1);
  const IdentityAnalysis identity(dataset_, geo_, 10);
  EXPECT_FALSE(identity.fake_ips().contains(uni));
}

TEST_F(GroupsTest, BannedUsernameIsFakeEvenWithoutIp) {
  add("ghostfake", std::nullopt, 3);
  ban("ghostfake");
  const IdentityAnalysis identity(dataset_, geo_, 10);
  EXPECT_TRUE(identity.is_fake("ghostfake"));
}

TEST_F(GroupsTest, FakeDetectionThresholdsConfigurable) {
  const IpAddress farm(10, 0, 0, 7);
  add("y1", farm, 1);
  add("y2", farm, 1);
  ban("y1");
  ban("y2");
  FakeDetectionConfig loose;
  loose.min_usernames_per_ip = 2;
  const IdentityAnalysis detects(dataset_, geo_, 10, loose);
  EXPECT_TRUE(detects.fake_ips().contains(farm));
  FakeDetectionConfig strict;
  strict.min_usernames_per_ip = 3;
  const IdentityAnalysis misses(dataset_, geo_, 10, strict);
  EXPECT_FALSE(misses.fake_ips().contains(farm));
}

TEST_F(GroupsTest, TopExcludesFakesAndCountsCompromised) {
  // Two prolific legit users, one prolific compromised account.
  for (int i = 0; i < 9; ++i) add("heavy1", IpAddress(10, 0, 0, 1), 5);
  for (int i = 0; i < 8; ++i) add("heavy2", IpAddress(20, 0, 0, 2), 5);
  for (int i = 0; i < 7; ++i) add("hacked", IpAddress(10, 0, 0, 9), 1);
  ban("hacked");
  add("tiny", IpAddress(20, 0, 0, 3), 1);
  const IdentityAnalysis identity(dataset_, geo_, 3);
  EXPECT_EQ(identity.top().size(), 2u);
  EXPECT_EQ(identity.compromised_in_top(), 1u);
  EXPECT_TRUE(identity.in_group("heavy1", TargetGroup::Top));
  EXPECT_FALSE(identity.in_group("hacked", TargetGroup::Top));
  EXPECT_FALSE(identity.in_group("tiny", TargetGroup::Top));
}

TEST_F(GroupsTest, TopSplitsIntoHostingAndCommercial) {
  for (int i = 0; i < 5; ++i) add("hosted", IpAddress(10, 0, 0, 1), 5);
  for (int i = 0; i < 5; ++i) add("homey", IpAddress(20, 0, 0, 1), 5);
  const IdentityAnalysis identity(dataset_, geo_, 5);
  EXPECT_TRUE(identity.in_group("hosted", TargetGroup::TopHP));
  EXPECT_FALSE(identity.in_group("hosted", TargetGroup::TopCI));
  EXPECT_TRUE(identity.in_group("homey", TargetGroup::TopCI));
  EXPECT_TRUE(identity.in_group("hosted", TargetGroup::All));
}

TEST_F(GroupsTest, SharesSumCorrectly) {
  const IpAddress farm(10, 0, 0, 7);
  for (const char* name : {"f1", "f2", "f3"}) {
    add(name, farm, 10);
    ban(name);
  }
  for (int i = 0; i < 6; ++i) add("star", IpAddress(10, 0, 0, 1), 20);
  add("nobody", IpAddress(20, 0, 0, 5), 1);
  const IdentityAnalysis identity(dataset_, geo_, 1);
  const auto fake = identity.share_of(TargetGroup::Fake);
  const auto top = identity.share_of(TargetGroup::Top);
  const auto all = identity.share_of(TargetGroup::All);
  EXPECT_NEAR(fake.content, 3.0 / 10.0, 1e-9);
  EXPECT_NEAR(fake.downloads, 30.0 / 151.0, 1e-9);
  EXPECT_NEAR(top.content, 6.0 / 10.0, 1e-9);
  EXPECT_NEAR(all.content, 1.0, 1e-9);
  EXPECT_NEAR(all.downloads, 1.0, 1e-9);
}

TEST_F(GroupsTest, TopIpBreakdownSeparatesFarms) {
  const IpAddress farm(10, 0, 0, 7);
  for (const char* name : {"z1", "z2", "z3"}) {
    add(name, farm, 1);
    ban(name);
  }
  for (int i = 0; i < 4; ++i) add("solo", IpAddress(20, 0, 0, 2), 1);
  const IdentityAnalysis identity(dataset_, geo_, 10);
  const auto breakdown = identity.top_ip_breakdown();
  EXPECT_EQ(breakdown.considered, 2u);
  EXPECT_EQ(breakdown.multi_username, 1u);
  EXPECT_EQ(breakdown.single_username, 1u);
}

TEST_F(GroupsTest, Mn08FallsBackToIps) {
  // Username-less dataset: torrents carry only IPs.
  TorrentRecord r;
  r.publisher_ip = IpAddress(10, 0, 0, 1);
  dataset_.torrents.push_back(r);
  dataset_.downloaders.emplace_back();
  dataset_.publisher_sightings.emplace_back();
  const IdentityAnalysis identity(dataset_, geo_, 10);
  EXPECT_TRUE(identity.usernames().empty());
  ASSERT_EQ(identity.ips().size(), 1u);
  EXPECT_EQ(identity.ips()[0].content_count, 1u);
}

TEST_F(GroupsTest, GroupNameRendering) {
  EXPECT_EQ(to_string(TargetGroup::TopHP), "Top-HP");
  EXPECT_EQ(to_string(TargetGroup::Fake), "Fake");
}

}  // namespace
}  // namespace btpub
