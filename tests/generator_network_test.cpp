// Swarm demand generator and the peer-wire probe network view.
#include <gtest/gtest.h>

#include <cmath>

#include "swarm/generator.hpp"
#include "swarm/network.hpp"
#include "torrent/wire.hpp"

namespace btpub {
namespace {

class GeneratorTest : public ::testing::Test {
 protected:
  GeneratorTest()
      : catalog_(IspCatalog::standard(8)),
        consumers_(catalog_),
        generator_(consumers_) {}

  SwarmSpec genuine_spec() {
    SwarmSpec spec;
    spec.birth = 0;
    spec.expected_downloads = 200.0;
    spec.decay_tau = days(1);
    spec.arrivals_end = days(10);
    return spec;
  }

  IspCatalog catalog_;
  ConsumerPool consumers_;
  SwarmGenerator generator_;
};

TEST_F(GeneratorTest, TruncatedMeanFormula) {
  SwarmSpec spec = genuine_spec();
  // T = 10 days, tau = 1 day: mass ~ 1 - e^-10 ~ 1.
  EXPECT_NEAR(SwarmGenerator::truncated_mean(spec), 200.0, 0.1);
  spec.arrivals_end = days(1);
  EXPECT_NEAR(SwarmGenerator::truncated_mean(spec), 200.0 * (1 - std::exp(-1.0)),
              0.1);
  spec.arrivals_end = 0;
  EXPECT_EQ(SwarmGenerator::truncated_mean(spec), 0.0);
}

TEST_F(GeneratorTest, ArrivalCountNearMean) {
  Rng rng(2);
  double total = 0;
  for (int trial = 0; trial < 30; ++trial) {
    Swarm swarm(Sha1::hash("g" + std::to_string(trial)), 32, 0);
    total += static_cast<double>(generator_.generate(swarm, genuine_spec(), rng));
  }
  EXPECT_NEAR(total / 30.0, 200.0, 15.0);
}

TEST_F(GeneratorTest, ArrivalsWithinWindowAndDecaying) {
  Rng rng(3);
  Swarm swarm(Sha1::hash("decay"), 32, 0);
  const SwarmSpec spec = genuine_spec();
  generator_.generate(swarm, spec, rng);
  std::size_t early = 0, late = 0;
  for (const PeerSession& s : swarm.sessions()) {
    ASSERT_GE(s.arrive, spec.birth);
    ASSERT_LT(s.arrive, spec.arrivals_end);
    if (s.arrive < days(1)) ++early;
    if (s.arrive >= days(5)) ++late;
  }
  // Exponential decay with tau=1d: ~63% in the first day, ~nothing after 5.
  EXPECT_GT(early, swarm.session_count() / 2);
  EXPECT_LT(late, swarm.session_count() / 20);
}

TEST_F(GeneratorTest, GenuinePeersSometimesSeed) {
  Rng rng(4);
  Swarm swarm(Sha1::hash("seeds"), 32, 0);
  generator_.generate(swarm, genuine_spec(), rng);
  std::size_t completed = 0, aborted = 0;
  for (const PeerSession& s : swarm.sessions()) {
    if (s.complete_at < s.depart) {
      ++completed;
      EXPECT_GT(s.depart, s.complete_at);  // lingers at least briefly
    } else {
      ++aborted;
    }
  }
  EXPECT_GT(completed, 0u);
  EXPECT_GT(aborted, 0u);
  // Default abort probability is 15%.
  EXPECT_NEAR(static_cast<double>(aborted) / swarm.session_count(), 0.15, 0.08);
}

TEST_F(GeneratorTest, FakeSwarmNobodyCompletes) {
  Rng rng(5);
  Swarm swarm(Sha1::hash("fake"), 32, 0);
  SwarmSpec spec = genuine_spec();
  spec.fake = true;
  generator_.generate(swarm, spec, rng);
  ASSERT_GT(swarm.session_count(), 0u);
  for (const PeerSession& s : swarm.sessions()) {
    EXPECT_GE(s.complete_at, s.depart);  // never becomes a seeder
    EXPECT_LE(s.depart - s.arrive, minutes(40) + 1);  // bails quickly
  }
}

TEST_F(GeneratorTest, NatFractionRespected) {
  Rng rng(6);
  SwarmSpec spec = genuine_spec();
  spec.expected_downloads = 3000;
  spec.nat_fraction = 0.4;
  Swarm swarm(Sha1::hash("nat"), 32, 0);
  generator_.generate(swarm, spec, rng);
  std::size_t nat = 0;
  for (const PeerSession& s : swarm.sessions()) nat += s.nat;
  EXPECT_NEAR(static_cast<double>(nat) / swarm.session_count(), 0.4, 0.03);
}

TEST_F(GeneratorTest, ConsumerPoolStickyBias) {
  ConsumerPool pool(catalog_);
  const Endpoint sticky{IpAddress(9, 9, 9, 9), 1234};
  pool.add_sticky(sticky, 1.0);
  pool.set_sticky_bias(0.5);
  Rng rng(8);
  int hits = 0;
  for (int i = 0; i < 4000; ++i) {
    if (pool.draw(rng) == sticky) ++hits;
  }
  EXPECT_NEAR(hits / 4000.0, 0.5, 0.04);
}

TEST_F(GeneratorTest, ConsumerPoolWeights) {
  ConsumerPool pool(catalog_);
  const Endpoint a{IpAddress(1, 1, 1, 1), 1};
  const Endpoint b{IpAddress(2, 2, 2, 2), 2};
  pool.add_sticky(a, 1.0);
  pool.add_sticky(b, 3.0);
  pool.set_sticky_bias(1.0);  // always sticky
  Rng rng(10);
  int b_hits = 0;
  for (int i = 0; i < 8000; ++i) {
    if (pool.draw(rng) == b) ++b_hits;
  }
  EXPECT_NEAR(b_hits / 8000.0, 0.75, 0.03);
}

TEST_F(GeneratorTest, FreshConsumersResolveInGeoDb) {
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const Endpoint e = consumers_.draw(rng);
    ASSERT_TRUE(catalog_.db().lookup(e.ip).has_value());
    EXPECT_GT(e.port, 1024);
  }
}

// --- SwarmNetwork probes ---

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : swarm_(Sha1::hash("probe"), 40, 0) {
    PeerSession seeder;
    seeder.endpoint = Endpoint{IpAddress(10, 0, 0, 1), 6881};
    seeder.arrive = 0;
    seeder.depart = 1000;
    seeder.complete_at = 0;
    seeder.is_publisher = true;
    swarm_.add_session(seeder);

    PeerSession natted;
    natted.endpoint = Endpoint{IpAddress(10, 0, 0, 2), 6881};
    natted.arrive = 0;
    natted.depart = 1000;
    natted.nat = true;
    swarm_.add_session(natted);

    PeerSession leecher;
    leecher.endpoint = Endpoint{IpAddress(10, 0, 0, 3), 6881};
    leecher.arrive = 0;
    leecher.depart = 1000;
    leecher.complete_at = 500;
    swarm_.add_session(leecher);

    swarm_.finalize();
    network_.register_swarm(swarm_);
  }

  Swarm swarm_;
  SwarmNetwork network_;
};

TEST_F(NetworkTest, ProbeReachablePeerYieldsWireBytes) {
  const auto result =
      network_.probe(swarm_.infohash(), Endpoint{IpAddress(10, 0, 0, 1), 6881}, 10);
  ASSERT_TRUE(result.has_value());
  const auto hs = Handshake::decode(result->handshake);
  ASSERT_TRUE(hs.has_value());
  EXPECT_EQ(hs->infohash, swarm_.infohash());
  std::size_t pos = 0;
  const auto msg = decode_message(result->bitfield, pos);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, WireMessageType::Bitfield);
  EXPECT_TRUE(Bitfield::from_bytes(msg->payload, 40).complete());
}

TEST_F(NetworkTest, ProbeAdvertisesDhtPortForConnectablePeers) {
  const Endpoint peer{IpAddress(10, 0, 0, 1), 6881};
  const auto result = network_.probe(swarm_.infohash(), peer, 10);
  ASSERT_TRUE(result.has_value());
  std::size_t pos = 0;
  const auto msg = decode_message(result->port, pos);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, WireMessageType::Port);
  EXPECT_EQ(parse_port_message(msg->payload), peer.port);
}

TEST_F(NetworkTest, ProbePartialDownloaderNotComplete) {
  const auto result =
      network_.probe(swarm_.infohash(), Endpoint{IpAddress(10, 0, 0, 3), 6881}, 250);
  ASSERT_TRUE(result.has_value());
  std::size_t pos = 0;
  const auto msg = decode_message(result->bitfield, pos);
  ASSERT_TRUE(msg.has_value());
  EXPECT_FALSE(Bitfield::from_bytes(msg->payload, 40).complete());
}

TEST_F(NetworkTest, ProbeNattedPeerFails) {
  EXPECT_FALSE(network_
                   .probe(swarm_.infohash(),
                          Endpoint{IpAddress(10, 0, 0, 2), 6881}, 10)
                   .has_value());
}

TEST_F(NetworkTest, ProbeAbsentPeerOrSwarmFails) {
  EXPECT_FALSE(network_
                   .probe(swarm_.infohash(),
                          Endpoint{IpAddress(10, 0, 0, 1), 6881}, 2000)
                   .has_value());  // departed
  EXPECT_FALSE(network_
                   .probe(Sha1::hash("other"),
                          Endpoint{IpAddress(10, 0, 0, 1), 6881}, 10)
                   .has_value());  // unknown swarm
}

TEST_F(NetworkTest, RegisterRequiresFinalized) {
  Swarm raw(Sha1::hash("raw2"), 8, 0);
  EXPECT_THROW(network_.register_swarm(raw), std::logic_error);
}

TEST_F(NetworkTest, FindByInfohash) {
  EXPECT_EQ(network_.find(swarm_.infohash()), &swarm_);
  EXPECT_EQ(network_.find(Sha1::hash("nope")), nullptr);
  EXPECT_EQ(network_.swarm_count(), 1u);
}

}  // namespace
}  // namespace btpub
