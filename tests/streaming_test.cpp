// Streaming analysis layer (§4.5): the online session estimator, the
// real-time classifier's edge cases, and the headline convergence
// invariant — online end-of-crawl verdicts equal the batch pipeline's on
// the same observations, at any thread count and from either vantage,
// with HLL distinct-IP estimates inside the documented error bound.
#include "analysis/streaming/streaming_classifier.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <unordered_set>
#include <vector>

#include "analysis/classify.hpp"
#include "analysis/groups.hpp"
#include "analysis/session.hpp"
#include "analysis/streaming/online_session.hpp"
#include "core/ecosystem.hpp"
#include "crawler/crawler.hpp"
#include "crawler/dht_crawler.hpp"

namespace btpub {
namespace {

// ---------------------------------------------------------------- sessions

TEST(OnlineSessionEstimator, EmptyEstimator) {
  OnlineSessionEstimator est;
  EXPECT_EQ(est.session_count(), 0u);
  EXPECT_EQ(est.sighting_count(), 0u);
  EXPECT_EQ(est.total_session_length(), 0);
  EXPECT_TRUE(est.intervals().empty());
}

TEST(OnlineSessionEstimator, SingleSightingIsOneQueryGapSession) {
  OnlineSessionEstimator est(hours(4), minutes(15));
  est.add_sighting(hours(2));
  ASSERT_EQ(est.session_count(), 1u);
  EXPECT_EQ(est.total_session_length(), minutes(15));
  const auto intervals = est.intervals();
  ASSERT_EQ(intervals.size(), 1u);
  EXPECT_EQ(intervals[0].start, hours(2));
  EXPECT_EQ(intervals[0].end, hours(2) + minutes(15));
}

TEST(OnlineSessionEstimator, DuplicatesAndInSessionSightingsAreAbsorbed) {
  OnlineSessionEstimator est(hours(4), minutes(15));
  est.add_sighting(0);
  est.add_sighting(hours(2));
  est.add_sighting(hours(1));  // strictly inside [0, 2h]
  est.add_sighting(hours(2));  // duplicate of the right edge
  ASSERT_EQ(est.session_count(), 1u);
  EXPECT_EQ(est.total_session_length(), hours(2) + minutes(15));
  EXPECT_EQ(est.sighting_count(), 4u);
}

TEST(OnlineSessionEstimator, LateSightingBridgesTwoSessions) {
  OnlineSessionEstimator est(hours(4), minutes(15));
  est.add_sighting(0);
  est.add_sighting(hours(10));
  ASSERT_EQ(est.session_count(), 2u);
  // 5h from both neighbours: still two sessions (gap > 4h on each side).
  est.add_sighting(hours(5));
  EXPECT_EQ(est.session_count(), 3u);
  // 4h closes both gaps at once: everything collapses into one session.
  OnlineSessionEstimator bridge(hours(4), minutes(15));
  bridge.add_sighting(0);
  bridge.add_sighting(hours(8));
  ASSERT_EQ(bridge.session_count(), 2u);
  bridge.add_sighting(hours(4));
  ASSERT_EQ(bridge.session_count(), 1u);
  EXPECT_EQ(bridge.total_session_length(), hours(8) + minutes(15));
}

TEST(OnlineSessionEstimator, MatchesBatchReconstructionUnderAnyOrder) {
  // The pinned invariant: after any permutation of any sighting multiset,
  // intervals() equals reconstruct_sessions() over the sorted list.
  Rng rng(4242);
  for (int trial = 0; trial < 50; ++trial) {
    const SimDuration offline_gap = hours(1 + trial % 6);
    std::vector<SimTime> sightings;
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 40));
    for (std::size_t i = 0; i < n; ++i) {
      sightings.push_back(minutes(rng.uniform_int(0, 3000)));
    }
    const auto batch = [&] {
      std::vector<SimTime> sorted = sightings;
      std::sort(sorted.begin(), sorted.end());
      return reconstruct_sessions(sorted, offline_gap, minutes(15));
    }();

    rng.shuffle(sightings);
    OnlineSessionEstimator est(offline_gap, minutes(15));
    for (const SimTime t : sightings) est.add_sighting(t);

    const auto online = est.intervals();
    ASSERT_EQ(online.size(), batch.size()) << "trial " << trial;
    SimDuration batch_total = 0;
    for (std::size_t i = 0; i < online.size(); ++i) {
      EXPECT_EQ(online[i].start, batch[i].start) << "trial " << trial;
      EXPECT_EQ(online[i].end, batch[i].end) << "trial " << trial;
      batch_total += batch[i].length();
    }
    EXPECT_EQ(est.total_session_length(), batch_total) << "trial " << trial;
  }
}

TEST(OnlineSessionEstimator, OutOfOrderTelemetry) {
  OnlineSessionEstimator est;
  est.add_sighting(minutes(10));
  est.add_sighting(minutes(5));   // behind the newest
  est.add_sighting(minutes(10));  // ties the newest
  est.add_sighting(minutes(20));
  EXPECT_EQ(est.out_of_order_count(), 2u);
  EXPECT_EQ(est.sighting_count(), 4u);
}

TEST(OnlineSessionEstimator, NegativeQueryGapClampedToZero) {
  OnlineSessionEstimator est(hours(4), -minutes(15));
  est.add_sighting(hours(1));
  EXPECT_EQ(est.total_session_length(), 0);
  const auto intervals = est.intervals();
  ASSERT_EQ(intervals.size(), 1u);
  EXPECT_EQ(intervals[0].length(), 0);
}

// ------------------------------------------------------- classifier edges

class StreamingClassifierTest : public ::testing::Test {
 protected:
  StreamingClassifierTest() {
    const IspId hosting = geo_.add_isp("HostCo", IspType::HostingProvider, "FR");
    geo_.add_block(CidrBlock(IpAddress(20, 0, 0, 0), 8), hosting, "Paris");
    const IspId dsl = geo_.add_isp("DslNet", IspType::CommercialIsp, "ES");
    geo_.add_block(CidrBlock(IpAddress(30, 0, 0, 0), 8), dsl, "Madrid");

    Website portal;
    portal.domain = "megaseed.com";
    portal.type = BusinessType::PrivateBtPortal;
    portal.requires_registration = true;
    portal.has_private_tracker = true;
    websites_.add(portal);
  }

  static TorrentRecord make_record(TorrentId id, const std::string& username,
                                   std::optional<IpAddress> ip,
                                   const std::string& domain = "") {
    TorrentRecord record;
    record.portal_id = id;
    record.username = username;
    record.publisher_ip = ip;
    record.title = username + "-" + std::to_string(id);
    if (!domain.empty()) {
      record.textbox = "Get it at http://www." + domain + "/ now";
    }
    return record;
  }

  static const PublisherVerdict* find_verdict(const StreamingSnapshot& snap,
                                              const std::string& username) {
    for (const PublisherVerdict& v : snap.verdicts) {
      if (v.username == username) return &v;
    }
    return nullptr;
  }

  GeoDb geo_;
  WebsiteDirectory websites_;
};

TEST_F(StreamingClassifierTest, EmptySwarmTorrent) {
  // A discovered torrent whose tracker never returns a single peer must
  // still classify: zero estimated downloads, zero sessions, no flags.
  StreamingClassifier stream(geo_, websites_, {});
  stream.on_discover(make_record(0, "lonely", IpAddress(30, 0, 0, 1)), 0);
  const StreamingSnapshot snap = stream.round(hours(1));
  EXPECT_EQ(snap.torrents, 1u);
  EXPECT_EQ(snap.publishers, 1u);
  ASSERT_EQ(snap.torrent_estimates.size(), 1u);
  EXPECT_EQ(snap.torrent_estimates[0].est_distinct_downloaders, 0.0);
  EXPECT_EQ(snap.est_distinct_ips_global, 0.0);
  const PublisherVerdict* v = find_verdict(snap, "lonely");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->est_downloads, 0.0);
  EXPECT_EQ(v->seeding_hours, 0.0);
  EXPECT_FALSE(v->fake);
  EXPECT_TRUE(v->top);  // only publisher in the cut
  EXPECT_FALSE(v->rate_flagged);
  EXPECT_FALSE(snap.to_text().empty());
}

TEST_F(StreamingClassifierTest, HooksForUnknownTorrentAreNoOps) {
  StreamingClassifier stream(geo_, websites_, {});
  stream.on_downloaders(42, std::vector<IpAddress>{IpAddress(30, 0, 0, 9)}, 0);
  stream.on_publisher_sighting(42, 0);
  stream.on_removal(42, 0);
  EXPECT_EQ(stream.torrents_seen(), 0u);
  EXPECT_EQ(stream.updates(), 0u);
  EXPECT_EQ(stream.round(0).torrents, 0u);
}

TEST_F(StreamingClassifierTest, ModeratedMidCrawlIsProvisionalUntilBanConfirms) {
  StreamingClassifier stream(geo_, websites_, {});
  stream.on_discover(make_record(0, "victim", IpAddress(30, 0, 0, 2)), 0);
  stream.on_removal(0, hours(5));

  // Mid-crawl round: the removal stands in for the ban -> provisional fake.
  const PublisherVerdict* rolling = find_verdict(stream.round(hours(6)), "victim");
  ASSERT_NE(rolling, nullptr);
  EXPECT_TRUE(rolling->fake);
  EXPECT_TRUE(rolling->provisional_fake);

  // Finalize without a user-page ban: the batch rule sees no banned account.
  const PublisherVerdict* final_unbanned =
      find_verdict(stream.finalize(hours(6)), "victim");
  ASSERT_NE(final_unbanned, nullptr);
  EXPECT_FALSE(final_unbanned->fake);

  // The end-of-crawl user page confirms the ban: exact fake, not provisional.
  UserPage page;
  page.username = "victim";
  page.banned = true;
  stream.on_user_page("victim", page);
  const PublisherVerdict* final_banned =
      find_verdict(stream.finalize(hours(6)), "victim");
  ASSERT_NE(final_banned, nullptr);
  EXPECT_TRUE(final_banned->fake);
  EXPECT_FALSE(final_banned->provisional_fake);
}

TEST_F(StreamingClassifierTest, FakeFarmRuleOverProvisionalRemovals) {
  // One IP, three usernames, two moderated away mid-crawl: the farm rule
  // (>=3 usernames, >=50% banned) condemns all three in rolling rounds and
  // none at finalize until real bans arrive.
  StreamingClassifier stream(geo_, websites_, {});
  const IpAddress farm_ip(20, 0, 0, 5);
  stream.on_discover(make_record(0, "farm_a", farm_ip), 0);
  stream.on_discover(make_record(1, "farm_b", farm_ip), 0);
  stream.on_discover(make_record(2, "farm_c", farm_ip), 0);
  stream.on_removal(0, hours(2));
  stream.on_removal(1, hours(3));

  const StreamingSnapshot rolling = stream.round(hours(4));
  const auto rolling_fakes = rolling.fakes();
  EXPECT_EQ(std::unordered_set<std::string>(rolling_fakes.begin(),
                                            rolling_fakes.end()),
            (std::unordered_set<std::string>{"farm_a", "farm_b", "farm_c"}));
  EXPECT_TRUE(rolling.top().empty());

  EXPECT_TRUE(stream.finalize(hours(4)).fakes().empty());

  UserPage banned;
  banned.banned = true;
  stream.on_user_page("farm_a", banned);
  stream.on_user_page("farm_b", banned);
  const StreamingSnapshot final_snap = stream.finalize(hours(4));
  EXPECT_EQ(final_snap.fakes().size(), 3u);
}

TEST_F(StreamingClassifierTest, SketchesFeedEstimatesAndRateFlag) {
  StreamingConfig config;
  config.announce_rate_alert = 10.0;  // low alert so the test can trip it
  StreamingClassifier stream(geo_, websites_, config);
  const IpAddress publisher(20, 0, 0, 7);
  stream.on_discover(make_record(0, "noisy", publisher, "megaseed.com"), 0);

  std::vector<IpAddress> ips;
  for (std::uint32_t i = 0; i < 500; ++i) ips.push_back(IpAddress(0x1E000100u + i));
  stream.on_downloaders(0, ips, minutes(10));
  // 100 publisher sightings inside a sub-hour span (floored to 1 h): 100/h.
  for (int i = 0; i < 100; ++i) {
    stream.on_publisher_sighting(0, minutes(10 + i / 10));
  }

  const StreamingSnapshot snap = stream.round(hours(1));
  ASSERT_EQ(snap.torrent_estimates.size(), 1u);
  const double est = snap.torrent_estimates[0].est_distinct_downloaders;
  EXPECT_NEAR(est, 500.0, 3.0 * snap.hll_relative_error * 500.0 + 2.0);
  EXPECT_EQ(snap.announce_total, 600u);  // 500 downloaders + 100 sightings

  const PublisherVerdict* v = find_verdict(snap, "noisy");
  ASSERT_NE(v, nullptr);
  EXPECT_GE(v->announce_observations, 100u);
  EXPECT_TRUE(v->rate_flagged);
  EXPECT_TRUE(v->top);
  EXPECT_EQ(v->cls, BusinessClass::BtPortal);
  EXPECT_EQ(v->domain, "megaseed.com");
  EXPECT_TRUE(v->hosting_provider);  // 20.0.0.7 is the hosting block
  EXPECT_GT(v->seeding_hours, 0.0);
}

TEST_F(StreamingClassifierTest, ConcurrentPushesMatchSerialByteForByte) {
  // The streaming determinism contract in miniature: per-torrent state is
  // single-owner and the shared count-min is commutative, so four workers
  // interleaving pushes arbitrarily must land on the serial snapshot.
  constexpr int kTorrents = 16;
  StreamingClassifier serial(geo_, websites_, {});
  StreamingClassifier parallel(geo_, websites_, {});
  for (TorrentId id = 0; id < kTorrents; ++id) {
    const auto record =
        make_record(id, "pub" + std::to_string(id % 5),
                    IpAddress(30, 0, 0, 10 + id % 5),
                    id % 2 == 0 ? "megaseed.com" : "");
    serial.on_discover(record, 0);
    parallel.on_discover(record, 0);
  }
  const auto push = [](StreamingClassifier& stream, TorrentId id) {
    std::vector<IpAddress> ips;
    for (std::uint32_t i = 0; i < 200; ++i) {
      ips.push_back(IpAddress(0x50000000u + static_cast<std::uint32_t>(id) * 4096 + i));
    }
    stream.on_downloaders(id, ips, hours(1 + id));
    for (int s = 0; s < 8; ++s) {
      stream.on_publisher_sighting(id, hours(1 + id) + minutes(15 * s));
    }
  };
  for (TorrentId id = 0; id < kTorrents; ++id) push(serial, id);
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&, w] {
      for (TorrentId id = w; id < kTorrents; id += 4) push(parallel, id);
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(serial.updates(), parallel.updates());
  EXPECT_EQ(serial.finalize(days(1)).to_text(),
            parallel.finalize(days(1)).to_text());
}

// ---------------------------------------------------------- convergence

/// Cut-down quick scenario: large enough to populate every verdict class
/// (fake farms, portal promoters, altruists), small enough for CI.
ScenarioConfig convergence_scenario(std::uint64_t seed) {
  ScenarioConfig config = ScenarioConfig::quick(seed);
  config.name = "stream-convergence";
  config.window = days(2);
  config.population.regular_publishers = 120;
  config.population.portal_owners = 3;
  config.population.other_web = 2;
  config.population.top_altruistic = 4;
  config.population.fake_farms = 3;
  config.population.fake_usernames = 12;
  return config;
}

constexpr std::size_t kTopN = 20;

StreamingConfig convergence_stream_config() {
  StreamingConfig config;
  config.top_n = kTopN;
  return config;
}

/// Asserts that the streaming finalize() snapshot reproduces the batch
/// pipeline (IdentityAnalysis + unsampled classify_top_publishers) run on
/// the dataset of the very crawl the classifier observed.
void expect_matches_batch(const StreamingSnapshot& snap, const Dataset& dataset,
                          const GeoDb& geo, const WebsiteDirectory& websites) {
  const IdentityAnalysis identity(dataset, geo, kTopN);

  // Fake set, exactly.
  const auto fakes = snap.fakes();
  const std::unordered_set<std::string> streaming_fakes(fakes.begin(),
                                                        fakes.end());
  EXPECT_EQ(streaming_fakes, identity.fake_usernames());

  // Top cut: same members, same rank order.
  EXPECT_EQ(snap.top(), identity.top());

  // Per-publisher verdicts against batch stats and profiles.
  Rng rng(1);  // unused: sample_per_publisher = 0 disables sampling
  const auto batch =
      classify_top_publishers(dataset, identity, websites, 0, rng);
  std::unordered_map<std::string, const PublisherProfile*> profiles;
  for (const PublisherProfile& p : batch.profiles) profiles[p.username] = &p;

  std::size_t top_seen = 0;
  for (const PublisherVerdict& v : snap.verdicts) {
    const UsernameStats* stats = identity.find_username(v.username);
    ASSERT_NE(stats, nullptr) << v.username;
    EXPECT_EQ(v.content_count, stats->content_count) << v.username;
    EXPECT_EQ(v.fake, identity.is_fake(v.username)) << v.username;
    if (!v.top) continue;
    ++top_seen;
    EXPECT_EQ(v.hosting_provider, identity.top_hp().contains(v.username))
        << v.username;
    const auto it = profiles.find(v.username);
    ASSERT_NE(it, profiles.end()) << v.username;
    const PublisherProfile& p = *it->second;
    EXPECT_EQ(v.cls, p.cls) << v.username;
    EXPECT_EQ(v.domain, p.domain) << v.username;
    EXPECT_EQ(v.in_textbox, p.in_textbox) << v.username;
    EXPECT_EQ(v.in_filename, p.in_filename) << v.username;
    EXPECT_EQ(v.in_payload, p.in_payload) << v.username;
    EXPECT_EQ(v.dominant_language, p.dominant_language) << v.username;

    // Appendix-A session metrics: the online estimator is exact, so the
    // doubles match bit for bit (same integer totals, same fold order).
    const SeedingMetrics m = seeding_metrics(dataset, stats->torrents);
    EXPECT_DOUBLE_EQ(v.seeding_hours, m.avg_seeding_hours) << v.username;
    EXPECT_DOUBLE_EQ(v.aggregated_hours, m.aggregated_session_hours)
        << v.username;
    EXPECT_DOUBLE_EQ(v.parallel_torrents, m.avg_parallel_torrents)
        << v.username;
  }
  EXPECT_EQ(top_seen, identity.top().size());

  // Distinct-IP estimates: per torrent and global, inside the documented
  // band (3 sigma plus a +/-2 absolute floor for tiny swarms).
  ASSERT_EQ(snap.torrent_estimates.size(), dataset.torrent_count());
  for (std::size_t i = 0; i < dataset.torrent_count(); ++i) {
    EXPECT_EQ(snap.torrent_estimates[i].id, dataset.torrents[i].portal_id);
    const double exact = static_cast<double>(dataset.downloaders[i].size());
    EXPECT_NEAR(snap.torrent_estimates[i].est_distinct_downloaders, exact,
                3.0 * snap.hll_relative_error * exact + 2.0)
        << "torrent " << dataset.torrents[i].portal_id;
  }
  const double global_exact =
      static_cast<double>(dataset.distinct_ips_global());
  EXPECT_NEAR(snap.est_distinct_ips_global, global_exact,
              3.0 * snap.hll_relative_error * global_exact + 2.0);
}

class StreamingConvergenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ecosystem_ = new Ecosystem(convergence_scenario(515));
    ecosystem_->build();
  }
  static void TearDownTestSuite() {
    delete ecosystem_;
    ecosystem_ = nullptr;
  }

  /// One tracker crawl with the streaming classifier attached; the batch
  /// pipeline consumes the returned dataset of the same crawl.
  static Dataset crawl_with(StreamingClassifier& stream, std::size_t threads) {
    const ScenarioConfig& config = ecosystem_->config();
    ecosystem_->tracker().reset_state(derive_seed(config.seed, 0x57AB1Eull));
    CrawlerConfig crawler_config = config.crawler;
    crawler_config.threads = threads;
    Crawler crawler(ecosystem_->portal(), ecosystem_->tracker(),
                    ecosystem_->network(), ecosystem_->geo(), crawler_config,
                    derive_seed(config.seed, 0xC4A71ull));
    crawler.set_observer(&stream);
    return crawler.crawl_window(0, config.window);
  }

  static Ecosystem* ecosystem_;
};

Ecosystem* StreamingConvergenceTest::ecosystem_ = nullptr;

TEST_F(StreamingConvergenceTest, TrackerVantageSequentialMatchesBatch) {
  StreamingClassifier stream(ecosystem_->geo(), ecosystem_->websites(),
                             convergence_stream_config());
  const Dataset dataset = crawl_with(stream, 1);
  ASSERT_GT(dataset.torrent_count(), 0u);
  const StreamingSnapshot snap = stream.finalize(ecosystem_->config().window);
  EXPECT_EQ(snap.torrents, dataset.torrent_count());
  expect_matches_batch(snap, dataset, ecosystem_->geo(),
                       ecosystem_->websites());
  // The quick scenario plants fake farms and portal promoters; make sure
  // the convergence check exercised non-trivial verdicts.
  EXPECT_FALSE(snap.fakes().empty());
  EXPECT_FALSE(snap.top().empty());
}

TEST_F(StreamingConvergenceTest, ParallelCrawlMatchesBatchAndSequentialBytes) {
  StreamingClassifier sequential(ecosystem_->geo(), ecosystem_->websites(),
                                 convergence_stream_config());
  const Dataset dataset_seq = crawl_with(sequential, 1);
  StreamingClassifier parallel(ecosystem_->geo(), ecosystem_->websites(),
                               convergence_stream_config());
  const Dataset dataset_par = crawl_with(parallel, 4);

  // Online verdicts at N threads: byte-identical to the sequential run and
  // still batch-exact against the parallel crawl's own dataset.
  const SimTime window = ecosystem_->config().window;
  EXPECT_EQ(parallel.finalize(window).to_text(),
            sequential.finalize(window).to_text());
  EXPECT_EQ(dataset_par.torrent_count(), dataset_seq.torrent_count());
  expect_matches_batch(parallel.finalize(window), dataset_par,
                       ecosystem_->geo(), ecosystem_->websites());
}

TEST_F(StreamingConvergenceTest, DhtVantageMatchesBatch) {
  // The trackerless vantage: no publisher IPs, no sightings — verdicts
  // reduce to the username/ban/content signal, and the streaming layer
  // must match the batch analysis of the same DHT dataset.
  const ScenarioConfig& config = ecosystem_->config();
  const auto overlay =
      ecosystem_->build_dht_overlay(config.window + config.dht_crawler.grace);
  DhtCrawler crawler(ecosystem_->portal(), *overlay, config.dht_crawler,
                     derive_seed(config.seed, 0xD47ull));
  StreamingClassifier stream(ecosystem_->geo(), ecosystem_->websites(),
                             convergence_stream_config());
  crawler.set_observer(&stream);
  const Dataset dataset = crawler.crawl_window(0, config.window);
  ASSERT_GT(dataset.torrent_count(), 0u);
  const StreamingSnapshot snap = stream.finalize(config.window);
  EXPECT_EQ(snap.torrents, dataset.torrent_count());
  expect_matches_batch(snap, dataset, ecosystem_->geo(),
                       ecosystem_->websites());
}

}  // namespace
}  // namespace btpub
