// Swarm presence sweeping, sampling and progress model.
#include "swarm/swarm.hpp"

#include <gtest/gtest.h>

#include <set>

namespace btpub {
namespace {

PeerSession leecher(std::uint32_t ip, SimTime arrive, SimTime depart,
                    SimTime complete_at = std::numeric_limits<SimTime>::max(),
                    bool nat = false) {
  PeerSession s;
  s.endpoint = Endpoint{IpAddress(ip), 6881};
  s.arrive = arrive;
  s.depart = depart;
  s.complete_at = complete_at;
  s.nat = nat;
  return s;
}

PeerSession seeder_from_start(std::uint32_t ip, SimTime arrive, SimTime depart) {
  PeerSession s = leecher(ip, arrive, depart, arrive);
  s.is_publisher = true;
  return s;
}

Swarm make_basic_swarm() {
  Swarm swarm(Sha1::hash("swarm"), 100, 0);
  swarm.add_session(seeder_from_start(1, 0, 1000));       // publisher
  swarm.add_session(leecher(2, 100, 500, 400));           // completes at 400
  swarm.add_session(leecher(3, 200, 300));                // aborts
  swarm.add_session(leecher(4, 600, 900, 800));           // later peer
  swarm.finalize();
  return swarm;
}

TEST(SwarmTest, CountsThroughLifecycle) {
  Swarm swarm = make_basic_swarm();
  EXPECT_EQ(swarm.counts_at(0).seeders, 1u);
  EXPECT_EQ(swarm.counts_at(0).leechers, 0u);
  EXPECT_EQ(swarm.counts_at(150).leechers, 1u);   // peer 2 arrived
  EXPECT_EQ(swarm.counts_at(250).leechers, 2u);   // peer 3 too
  EXPECT_EQ(swarm.counts_at(350).leechers, 1u);   // peer 3 gone
  // Peer 2 completed at 400: now a second seeder until it departs at 500.
  EXPECT_EQ(swarm.counts_at(450).seeders, 2u);
  EXPECT_EQ(swarm.counts_at(450).leechers, 0u);
  EXPECT_EQ(swarm.counts_at(550).seeders, 1u);
  EXPECT_EQ(swarm.counts_at(1500).total(), 0u);   // everyone gone
}

TEST(SwarmTest, BackwardsQueryRewinds) {
  Swarm swarm = make_basic_swarm();
  EXPECT_EQ(swarm.counts_at(450).seeders, 2u);
  // Going back in time is allowed (slow path rebuild).
  EXPECT_EQ(swarm.counts_at(0).seeders, 1u);
  EXPECT_EQ(swarm.counts_at(0).leechers, 0u);
}

TEST(SwarmTest, SamplePeersReturnsPresentOnly) {
  Swarm swarm = make_basic_swarm();
  Rng rng(1);
  const auto peers = swarm.sample_peers(250, 10, rng);
  ASSERT_EQ(peers.size(), 3u);  // publisher + peers 2,3
  for (const PeerSession* p : peers) {
    EXPECT_TRUE(p->present_at(250));
  }
}

TEST(SwarmTest, SampleDistinctAndBounded) {
  Swarm swarm(Sha1::hash("big"), 10, 0);
  for (std::uint32_t i = 0; i < 500; ++i) {
    swarm.add_session(leecher(i + 1, 0, 1000));
  }
  swarm.finalize();
  Rng rng(2);
  const auto sample = swarm.sample_peers(10, 200, rng);
  ASSERT_EQ(sample.size(), 200u);
  std::set<std::uint32_t> ips;
  for (const PeerSession* p : sample) ips.insert(p->endpoint.ip.value());
  EXPECT_EQ(ips.size(), 200u);
}

TEST(SwarmTest, SampleUniformCoverage) {
  Swarm swarm(Sha1::hash("uni"), 10, 0);
  for (std::uint32_t i = 0; i < 50; ++i) swarm.add_session(leecher(i + 1, 0, 100));
  swarm.finalize();
  Rng rng(3);
  std::vector<int> hits(51, 0);
  for (int round = 0; round < 2000; ++round) {
    for (const PeerSession* p : swarm.sample_peers(50, 10, rng)) {
      ++hits[p->endpoint.ip.value()];
    }
  }
  // Each of 50 peers expected 2000*10/50 = 400 times.
  for (std::uint32_t i = 1; i <= 50; ++i) EXPECT_NEAR(hits[i], 400, 90);
}

TEST(SwarmTest, FindPeerByEndpointAndTime) {
  Swarm swarm = make_basic_swarm();
  const Endpoint target{IpAddress(2u), 6881};
  EXPECT_NE(swarm.find_peer(target, 250), nullptr);
  EXPECT_EQ(swarm.find_peer(target, 50), nullptr);    // not yet arrived
  EXPECT_EQ(swarm.find_peer(target, 501), nullptr);   // departed
  EXPECT_EQ(swarm.find_peer(Endpoint{IpAddress(99u), 1}, 250), nullptr);
}

TEST(SwarmTest, ProgressModel) {
  Swarm swarm = make_basic_swarm();
  const PeerSession& downloader = swarm.sessions()[1];  // completes 100->400
  EXPECT_DOUBLE_EQ(swarm.progress_at(downloader, 100), 0.0);
  EXPECT_NEAR(swarm.progress_at(downloader, 250), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(swarm.progress_at(downloader, 400), 1.0);
  EXPECT_DOUBLE_EQ(swarm.progress_at(downloader, 450), 1.0);
  const PeerSession& aborter = swarm.sessions()[2];  // never completes
  EXPECT_LT(swarm.progress_at(aborter, 299), 1.0);
}

TEST(SwarmTest, BitfieldMatchesProgress) {
  Swarm swarm = make_basic_swarm();
  const PeerSession& publisher = swarm.sessions()[0];
  EXPECT_TRUE(swarm.bitfield_at(publisher, 10).complete());
  const PeerSession& downloader = swarm.sessions()[1];
  const Bitfield half = swarm.bitfield_at(downloader, 250);
  EXPECT_EQ(half.count(), 50u);
  EXPECT_FALSE(half.complete());
  EXPECT_TRUE(swarm.bitfield_at(downloader, 400).complete());
}

TEST(SwarmTest, LastDepartureAndDistinctIps) {
  Swarm swarm = make_basic_swarm();
  EXPECT_EQ(swarm.last_departure(), 1000);
  // Publisher session excluded from downloader IP count.
  EXPECT_EQ(swarm.distinct_downloader_ips(), 3u);
}

TEST(SwarmTest, DegenerateSessionsDropped) {
  Swarm swarm(Sha1::hash("d"), 10, 0);
  swarm.add_session(leecher(1, 100, 100));  // zero length
  swarm.add_session(leecher(2, 100, 50));   // negative length
  swarm.finalize();
  EXPECT_EQ(swarm.session_count(), 0u);
}

TEST(SwarmTest, AddAfterFinalizeThrows) {
  Swarm swarm(Sha1::hash("f"), 10, 0);
  swarm.finalize();
  EXPECT_THROW(swarm.add_session(leecher(1, 0, 10)), std::logic_error);
}

TEST(SwarmTest, ReentrantPeerHasTwoSessions) {
  Swarm swarm(Sha1::hash("r"), 10, 0);
  swarm.add_session(leecher(7, 0, 100));
  swarm.add_session(leecher(7, 200, 300));
  swarm.finalize();
  const Endpoint e{IpAddress(7u), 6881};
  EXPECT_NE(swarm.find_peer(e, 50), nullptr);
  EXPECT_EQ(swarm.find_peer(e, 150), nullptr);
  EXPECT_NE(swarm.find_peer(e, 250), nullptr);
  EXPECT_EQ(swarm.distinct_downloader_ips(), 1u);
}

}  // namespace
}  // namespace btpub
