// Bump-pointer arena: alignment, growth, reset-reuse.
#include "util/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

namespace btpub {
namespace {

bool aligned_to(const void* p, std::size_t align) {
  return reinterpret_cast<std::uintptr_t>(p) % align == 0;
}

TEST(Arena, AllocationsAreAligned) {
  Arena arena;
  // Interleave odd sizes with strict alignments; every pointer must honour
  // the requested alignment regardless of what preceded it.
  for (int round = 0; round < 100; ++round) {
    char* c = static_cast<char*>(arena.allocate(1, 1));
    *c = 'x';
    auto* d = static_cast<double*>(arena.allocate(sizeof(double), alignof(double)));
    *d = 1.5;
    EXPECT_TRUE(aligned_to(d, alignof(double)));
    auto* q = arena.alloc_array<std::uint64_t>(3);
    EXPECT_TRUE(aligned_to(q, alignof(std::uint64_t)));
    q[0] = q[1] = q[2] = round;
  }
}

TEST(Arena, ExtendedAlignment) {
  Arena arena(64);
  for (int i = 0; i < 20; ++i) {
    void* p = arena.allocate(40, 64);
    EXPECT_TRUE(aligned_to(p, 64));
    std::memset(p, 0xab, 40);
  }
}

TEST(Arena, AllocationsDoNotOverlap) {
  Arena arena(128);  // small first block forces several growths
  std::vector<std::uint32_t*> ptrs;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    auto* p = arena.alloc_array<std::uint32_t>(7);
    for (int k = 0; k < 7; ++k) p[k] = i;
    ptrs.push_back(p);
  }
  for (std::uint32_t i = 0; i < 1000; ++i) {
    for (int k = 0; k < 7; ++k) EXPECT_EQ(ptrs[i][k], i);
  }
  EXPECT_GE(arena.bytes_used(), 1000u * 7u * sizeof(std::uint32_t));
  EXPECT_GT(arena.block_count(), 1u);
}

TEST(Arena, OversizedRequestGetsDedicatedBlock) {
  Arena arena(64);
  auto* big = arena.alloc_array<std::uint8_t>(1 << 20);
  std::memset(big, 0x5a, 1 << 20);
  EXPECT_EQ(big[0], 0x5a);
  EXPECT_EQ(big[(1 << 20) - 1], 0x5a);
  EXPECT_GE(arena.bytes_reserved(), std::size_t{1} << 20);
}

TEST(Arena, CopyArrayRoundTrips) {
  Arena arena;
  const std::vector<int> src = {3, 1, 4, 1, 5, 9, 2, 6};
  const int* copy = arena.copy_array(src.data(), src.size());
  ASSERT_NE(copy, nullptr);
  for (std::size_t i = 0; i < src.size(); ++i) EXPECT_EQ(copy[i], src[i]);
  EXPECT_EQ(arena.copy_array<int>(nullptr, 0), nullptr);
}

TEST(Arena, ResetKeepsBiggestBlockAndReuses) {
  Arena arena(64);
  for (int i = 0; i < 500; ++i) arena.alloc_array<std::uint64_t>(16);
  const std::size_t blocks_before = arena.block_count();
  ASSERT_GT(blocks_before, 1u);

  arena.reset();
  EXPECT_EQ(arena.block_count(), 1u);
  EXPECT_EQ(arena.bytes_used(), 0u);
  const std::size_t kept = arena.bytes_reserved();

  // Refilling with the same shape must fit the kept block: steady-state
  // reuse means no new system allocations.
  std::size_t used = 0;
  while (used + 16 * sizeof(std::uint64_t) <= kept / 2) {
    arena.alloc_array<std::uint64_t>(16);
    used += 16 * sizeof(std::uint64_t);
  }
  EXPECT_EQ(arena.block_count(), 1u);
}

TEST(Arena, MoveTransfersOwnership) {
  Arena a(64);
  int* p = a.alloc_array<int>(4);
  p[0] = 42;
  Arena b = std::move(a);
  EXPECT_EQ(p[0], 42);  // storage survives the move
  int* q = b.alloc_array<int>(4);
  q[0] = 7;
  EXPECT_EQ(p[0], 42);
}

}  // namespace
}  // namespace btpub
