// netio_http_test — the HTTP/1.1 announce listener over real TCP framing:
// golden-bytes equivalence of socket-served bodies against
// Tracker::handle_get / announce_into, keep-alive pipelining, and
// malformed framing (bad request lines, unsupported versions, oversized
// headers) answered with the right status and a closed connection.
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "netio/http.hpp"
#include "netio/serve.hpp"
#include "netio/socket.hpp"
#include "tracker/announce.hpp"
#include "tracker/tracker.hpp"
#include "util/rng.hpp"

namespace btpub::netio {
namespace {

constexpr std::uint64_t kSeed = 97;
constexpr std::size_t kSwarms = 4;
constexpr std::size_t kPeers = 200;
const SimTime kFrozen = hours(2);

ServeConfig test_config() {
  ServeConfig config;
  config.shards = 1;
  config.swarms = kSwarms;
  config.peers_per_swarm = kPeers;
  config.seed = kSeed;
  config.enable_http = true;
  config.fixed_time = kFrozen;
  return config;
}

struct ParsedResponse {
  int status = 0;
  std::string head;
  std::string body;
  bool keep_alive = false;
};

/// Blocking TCP client that frames responses by Content-Length.
class HttpClient {
 public:
  explicit HttpClient(std::uint16_t port)
      : fd_(make_tcp_client_socket("127.0.0.1", port)) {}

  void send_raw(std::string_view bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n =
          write(fd_.get(), bytes.data() + off, bytes.size() - off);
      ASSERT_GT(n, 0);
      off += static_cast<std::size_t>(n);
    }
  }

  std::optional<ParsedResponse> read_response(int timeout_ms = 2000) {
    for (;;) {
      const auto head_end = rx_.find("\r\n\r\n");
      if (head_end != std::string::npos) {
        ParsedResponse response;
        response.head = rx_.substr(0, head_end);
        response.status = std::atoi(response.head.c_str() + 9);
        response.keep_alive =
            response.head.find("Connection: keep-alive") != std::string::npos;
        std::size_t content_length = 0;
        if (const auto pos = response.head.find("Content-Length:");
            pos != std::string::npos) {
          content_length = static_cast<std::size_t>(
              std::strtoul(response.head.c_str() + pos + 15, nullptr, 10));
        }
        const std::size_t total = head_end + 4 + content_length;
        if (rx_.size() >= total) {
          response.body = rx_.substr(head_end + 4, content_length);
          rx_.erase(0, total);
          return response;
        }
      }
      if (!fill(timeout_ms)) return std::nullopt;
    }
  }

  /// True when the server closed the connection (EOF).
  bool server_closed(int timeout_ms = 2000) {
    for (;;) {
      pollfd p{fd_.get(), POLLIN, 0};
      if (poll(&p, 1, timeout_ms) <= 0) return false;
      char buf[512];
      const ssize_t n = recv(fd_.get(), buf, sizeof buf, 0);
      if (n == 0) return true;
      if (n < 0) return errno != EAGAIN && errno != EWOULDBLOCK;
      rx_.append(buf, static_cast<std::size_t>(n));
    }
  }

 private:
  bool fill(int timeout_ms) {
    pollfd p{fd_.get(), POLLIN, 0};
    if (poll(&p, 1, timeout_ms) <= 0) return false;
    char buf[4096];
    const ssize_t n = read(fd_.get(), buf, sizeof buf);
    if (n <= 0) return false;
    rx_.append(buf, static_cast<std::size_t>(n));
    return true;
  }

  FdHandle fd_;
  std::string rx_;
};

struct LocalReplica {
  std::vector<Swarm> world;
  Tracker tracker;

  LocalReplica()
      : world(build_serve_world(kSeed, kSwarms, kPeers)),
        tracker(replica_config(),
                Rng(derive_seed(kSeed, 0x6e657453'65727665ULL))) {
    for (Swarm& swarm : world) tracker.host_swarm(swarm);
  }

  static TrackerConfig replica_config() {
    TrackerConfig config;
    config.min_query_gap = 0;
    config.max_query_gap = 0;
    return config;
  }
};

std::string announce_target(std::size_t swarm, std::uint32_t ip) {
  AnnounceRequest request;
  request.infohash = serve_swarm_infohash(kSeed, swarm);
  request.client = Endpoint{IpAddress(ip), 6881};
  request.numwant = 50;
  request.now = kFrozen;  // carried in-band via the crawler's t parameter
  return to_query_string(request);
}

TEST(NetioHttp, AnnounceBodyMatchesHandleGetAndFastPath) {
  ServeDaemon daemon(test_config());
  daemon.start();
  HttpClient client(daemon.http_port());
  LocalReplica replica;

  for (std::size_t s = 0; s < kSwarms; ++s) {
    const std::string target =
        announce_target(s, 0x0B040000u + static_cast<std::uint32_t>(s));
    client.send_raw("GET " + target + " HTTP/1.1\r\nHost: t\r\n\r\n");
    const auto response = client.read_response();
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, 200);
    EXPECT_TRUE(response->keep_alive);

    // handle_get and the announce_into fast path are themselves tested
    // byte-identical (announce_fastpath_test); the wire must match both.
    EXPECT_EQ(response->body, replica.tracker.handle_get(target));

    AnnounceReply reply;
    Tracker::AnnounceScratch scratch;
    const auto parsed = parse_query_string(target);
    ASSERT_TRUE(parsed.has_value());
    replica.tracker.announce_into(*parsed, reply, scratch);
    std::string direct;
    encode_announce_reply_into(reply, direct);
    EXPECT_EQ(response->body, direct);
  }

  daemon.request_stop();
  daemon.join();
  EXPECT_EQ(daemon.stats().http_announces, kSwarms);
}

TEST(NetioHttp, PipelinedRequestsAnswerInOrderOverOneConnection) {
  ServeDaemon daemon(test_config());
  daemon.start();
  HttpClient client(daemon.http_port());
  LocalReplica replica;

  std::string burst;
  std::vector<std::string> targets;
  for (std::size_t i = 0; i < 5; ++i) {
    targets.push_back(
        announce_target(i % kSwarms, 0x0B050000u + static_cast<std::uint32_t>(i)));
    burst += "GET " + targets.back() + " HTTP/1.1\r\nHost: t\r\n\r\n";
  }
  client.send_raw(burst);
  for (const std::string& target : targets) {
    const auto response = client.read_response();
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, 200);
    EXPECT_EQ(response->body, replica.tracker.handle_get(target));
  }

  daemon.request_stop();
  daemon.join();
  const ServeStats stats = daemon.stats();
  EXPECT_EQ(stats.http_announces, 5u);
  EXPECT_EQ(stats.http_accepted, 1u);
}

TEST(NetioHttp, ScrapeMatchesTrackerScrape) {
  ServeDaemon daemon(test_config());
  daemon.start();
  HttpClient client(daemon.http_port());
  LocalReplica replica;

  const std::string hash_bytes(
      reinterpret_cast<const char*>(
          serve_swarm_infohash(kSeed, 0).bytes.data()),
      20);
  const std::string target = "/scrape?info_hash=" + url_escape(hash_bytes);
  client.send_raw("GET " + target + " HTTP/1.1\r\nHost: t\r\n\r\n");
  const auto response = client.read_response();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->body,
            replica.tracker.scrape(serve_swarm_infohash(kSeed, 0), kFrozen));

  daemon.request_stop();
  daemon.join();
}

TEST(NetioHttp, MalformedRequestLineGets400AndClose) {
  ServeDaemon daemon(test_config());
  daemon.start();
  {
    HttpClient client(daemon.http_port());
    client.send_raw("COMPLETE GARBAGE\r\n\r\n");
    const auto response = client.read_response();
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, 400);
    EXPECT_TRUE(client.server_closed());
  }
  {
    HttpClient client(daemon.http_port());
    client.send_raw("GET /announce HTTP/2.0\r\n\r\n");
    const auto response = client.read_response();
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, 505);
    EXPECT_TRUE(client.server_closed());
  }
  {
    HttpClient client(daemon.http_port());
    client.send_raw("POST /announce HTTP/1.1\r\nHost: t\r\n\r\n");
    const auto response = client.read_response();
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, 405);
  }
  {
    HttpClient client(daemon.http_port());
    client.send_raw("GET /nowhere HTTP/1.1\r\nHost: t\r\n\r\n");
    const auto response = client.read_response();
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, 404);
  }
  {
    HttpClient client(daemon.http_port());
    client.send_raw("GET /announce?info_hash=bogus HTTP/1.1\r\nHost: t\r\n\r\n");
    const auto response = client.read_response();
    ASSERT_TRUE(response.has_value());
    // Tracker convention: malformed announce queries get a bencoded
    // failure body with status 200, exactly like handle_get.
    EXPECT_EQ(response->status, 200);
    EXPECT_NE(response->body.find("malformed request"), std::string::npos);
  }
  daemon.request_stop();
  daemon.join();
  EXPECT_GE(daemon.stats().http_bad_requests, 3u);
}

TEST(NetioHttp, OversizedHeaderBlockGets431AndClose) {
  ServeDaemon daemon(test_config());
  daemon.start();
  HttpClient client(daemon.http_port());
  std::string huge = "GET /announce HTTP/1.1\r\n";
  huge += "X-Padding: " + std::string(HttpAnnounceServer::kMaxHeaderBytes, 'x');
  client.send_raw(huge);  // no terminating CRLFCRLF: cap triggers first
  const auto response = client.read_response();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 431);
  EXPECT_TRUE(client.server_closed());
  daemon.request_stop();
  daemon.join();
  EXPECT_EQ(daemon.stats().http_bad_requests, 1u);
}

}  // namespace
}  // namespace btpub::netio
