// SHA-1 against the RFC 3174 / FIPS 180 test vectors, plus streaming and
// digest value-type behaviour.
#include "crypto/sha1.hpp"

#include <gtest/gtest.h>

#include <string>
#include <unordered_set>

namespace btpub {
namespace {

TEST(Sha1, EmptyString) {
  EXPECT_EQ(Sha1::hash("").hex(), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc) {
  EXPECT_EQ(Sha1::hash("abc").hex(), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, TwoBlockMessage) {
  EXPECT_EQ(Sha1::hash("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").hex(),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs) {
  Sha1 ctx;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(chunk);
  EXPECT_EQ(ctx.finish().hex(), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, ExactBlockBoundary) {
  // 64-byte message exercises the padding-into-second-block path.
  const std::string msg(64, 'x');
  Sha1 ctx;
  ctx.update(msg);
  EXPECT_EQ(ctx.finish(), Sha1::hash(msg));
}

TEST(Sha1, FiftyFiveAndFiftySixBytes) {
  // 55 bytes: length fits after 0x80 in the same block; 56: it does not.
  for (std::size_t n : {55u, 56u, 63u, 65u}) {
    const std::string msg(n, 'q');
    EXPECT_EQ(Sha1::hash(msg).hex().size(), 40u);
    EXPECT_EQ(Sha1::hash(msg), Sha1::hash(msg));
  }
}

class Sha1Chunking : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Sha1Chunking, StreamingMatchesOneShot) {
  std::string message;
  for (int i = 0; i < 997; ++i) message.push_back(static_cast<char>(i * 31 + 7));
  const Sha1Digest expected = Sha1::hash(message);
  Sha1 ctx;
  const std::size_t chunk = GetParam();
  for (std::size_t pos = 0; pos < message.size(); pos += chunk) {
    ctx.update(std::string_view(message).substr(pos, chunk));
  }
  EXPECT_EQ(ctx.finish(), expected);
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, Sha1Chunking,
                         ::testing::Values(1u, 3u, 19u, 64u, 65u, 128u, 997u));

TEST(Sha1Digest, HexRoundTrip) {
  const Sha1Digest d = Sha1::hash("round trip");
  EXPECT_EQ(Sha1Digest::from_hex(d.hex()), d);
}

TEST(Sha1Digest, FromHexRejectsMalformed) {
  EXPECT_EQ(Sha1Digest::from_hex("zz"), Sha1Digest{});
  EXPECT_EQ(Sha1Digest::from_hex(std::string(40, 'g')), Sha1Digest{});
  // Right length, bad chars -> all-zero digest.
  std::string bad(40, '0');
  bad[7] = '!';
  EXPECT_EQ(Sha1Digest::from_hex(bad), Sha1Digest{});
}

TEST(Sha1Digest, Hashable) {
  std::unordered_set<Sha1Digest> set;
  for (int i = 0; i < 100; ++i) set.insert(Sha1::hash(std::to_string(i)));
  EXPECT_EQ(set.size(), 100u);
}

TEST(Sha1Digest, DistinctInputsDistinctDigests) {
  EXPECT_NE(Sha1::hash("a"), Sha1::hash("b"));
  EXPECT_NE(Sha1::hash("abc"), Sha1::hash("abc "));
}

TEST(Sha1, BinaryInputWithNulBytes) {
  std::string msg = "ab";
  msg.push_back('\0');
  msg += "cd";
  EXPECT_EQ(Sha1::hash(msg).hex().size(), 40u);
  EXPECT_NE(Sha1::hash(msg), Sha1::hash("abcd"));
}

}  // namespace
}  // namespace btpub
