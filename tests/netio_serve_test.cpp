// netio_serve_test — the multi-threaded daemon under real concurrent
// load: SO_REUSEPORT shards + multi-worker loadgen (the TSan job runs
// this), shard-replica consistency, duration/max-announce stopping, and
// bind-failure error reporting.
#include <string>
#include <system_error>

#include <gtest/gtest.h>

#include "netio/loadgen.hpp"
#include "netio/serve.hpp"

namespace btpub::netio {
namespace {

std::size_t test_threads() {
  if (const char* env = std::getenv("BTPUB_TEST_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return 2;
}

ServeConfig small_world(std::size_t shards) {
  ServeConfig config;
  config.shards = shards;
  config.swarms = 4;
  config.peers_per_swarm = 100;
  config.seed = 7;
  return config;
}

TEST(NetioServe, MultiShardDaemonServesMultiThreadedLoad) {
  const std::size_t threads = test_threads();
  ServeConfig config = small_world(threads);
  ServeDaemon daemon(config);
  EXPECT_EQ(daemon.shard_count(), threads);
  daemon.start();

  LoadgenConfig load;
  load.udp_port = daemon.udp_port();
  load.threads = threads;
  load.duration_seconds = 5.0;       // bound, not target: quota stops first
  load.max_requests = 2000;          // per worker
  load.window = 16;
  load.seed = config.seed;
  load.swarms = config.swarms;
  load.numwant = 20;
  const LoadgenReport report = run_loadgen(load);

  daemon.request_stop();
  daemon.join();

  EXPECT_EQ(report.sent, 2000u * threads);
  EXPECT_EQ(report.errors, 0u);
  EXPECT_GT(report.received, 0u);
  EXPECT_GT(report.p50_ns, 0u);
  EXPECT_LE(report.p50_ns, report.p99_ns);

  const ServeStats stats = daemon.stats();
  EXPECT_EQ(stats.announces, report.sent);
  EXPECT_EQ(stats.connects, threads);
  EXPECT_EQ(stats.malformed, 0u);
  EXPECT_EQ(stats.announce_failures, 0u);
  // Graceful drain: everything that reached a socket was answered.
  EXPECT_EQ(stats.responses_tx, stats.datagrams_rx);
}

TEST(NetioServe, HttpAndUdpServeConcurrently) {
  ServeConfig config = small_world(2);
  ServeDaemon daemon(config);
  daemon.start();

  LoadgenConfig udp_load;
  udp_load.udp_port = daemon.udp_port();
  udp_load.threads = 1;
  udp_load.duration_seconds = 5.0;
  udp_load.max_requests = 500;
  udp_load.seed = config.seed;
  udp_load.swarms = config.swarms;

  LoadgenConfig http_load = udp_load;
  http_load.use_http = true;
  http_load.http_port = daemon.http_port();
  http_load.http_pipeline = 4;

  const LoadgenReport udp_report = run_loadgen(udp_load);
  const LoadgenReport http_report = run_loadgen(http_load);

  daemon.request_stop();
  daemon.join();

  EXPECT_EQ(udp_report.errors, 0u);
  EXPECT_EQ(http_report.errors, 0u);
  EXPECT_EQ(http_report.received, 500u);
  const ServeStats stats = daemon.stats();
  EXPECT_EQ(stats.announces, 500u);
  EXPECT_EQ(stats.http_announces, 500u);
}

TEST(NetioServe, DurationTimerStopsTheDaemon) {
  ServeConfig config = small_world(1);
  config.duration_seconds = 0.2;
  ServeDaemon daemon(config);
  // run() must return on its own: the timerfd fires, every shard drains.
  daemon.run();
  SUCCEED();
}

TEST(NetioServe, MaxAnnouncesStopsTheDaemon) {
  ServeConfig config = small_world(1);
  config.max_announces = 100;
  ServeDaemon daemon(config);
  daemon.start();

  LoadgenConfig load;
  load.udp_port = daemon.udp_port();
  load.threads = 1;
  // Pure duration bound: once the daemon stops itself at the quota the
  // remaining sends go unanswered, so a request quota would stall here.
  load.duration_seconds = 1.5;
  load.window = 8;
  load.seed = config.seed;
  load.swarms = config.swarms;
  run_loadgen(load);

  daemon.join();  // must have stopped itself at the announce quota
  EXPECT_GE(daemon.stats().announces, 100u);
}

TEST(NetioServe, BindFailureThrowsSystemErrorWithAddress) {
  ServeConfig config = small_world(1);
  config.bind_ip = "203.0.113.7";  // TEST-NET-3: not a local address
  config.udp_port = 18999;
  try {
    ServeDaemon daemon(config);
    FAIL() << "bind to a non-local address must throw";
  } catch (const std::system_error& e) {
    EXPECT_NE(std::string(e.what()).find("203.0.113.7:18999"),
              std::string::npos);
    EXPECT_NE(e.code().value(), 0);
  }
}

TEST(NetioServe, ReplicasAnswerIdenticallyAcrossShards) {
  // Two daemons with the same seed and a frozen clock are two replicas;
  // identical requests must produce identical worlds (scrape counts agree
  // for every swarm) — the invariant shard replication rests on.
  ServeConfig config = small_world(1);
  config.fixed_time = hours(2);
  const std::vector<Swarm> a = build_serve_world(config.seed, 4, 100);
  const std::vector<Swarm> b = build_serve_world(config.seed, 4, 100);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].infohash(), b[i].infohash());
    EXPECT_EQ(a[i].session_count(), b[i].session_count());
  }
}

}  // namespace
}  // namespace btpub::netio
